package incr

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/pc"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// randData builds a random discrete dataset with dependencies and a
// sprinkling of missing values.
func randData(t *testing.T, n int, seed int64) stats.Data {
	t.Helper()
	rel, err := bn.Cancer().Sample(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return auxdist.Identity(rel)
}

func sameBits(a, b stats.TestResult) bool {
	return math.Float64bits(a.Stat) == math.Float64bits(b.Stat) &&
		math.Float64bits(a.P) == math.Float64bits(b.P) &&
		a.Dof == b.Dof && a.Reliant == b.Reliant
}

// allPairTests runs a spread of CI tests on both testers and asserts
// bit-identical results.
func assertTesterIdentity(t *testing.T, got, want stats.CITester) {
	t.Helper()
	nv := want.NumVars()
	for x := 0; x < nv; x++ {
		for y := x + 1; y < nv; y++ {
			var zs [][]int
			zs = append(zs, nil)
			for z := 0; z < nv; z++ {
				if z != x && z != y {
					zs = append(zs, []int{z})
				}
			}
			for _, z := range zs {
				w, err := want.Test(x, y, z)
				if err != nil {
					t.Fatal(err)
				}
				g, err := got.Test(x, y, z)
				if err != nil {
					t.Fatal(err)
				}
				if !sameBits(g, w) {
					t.Fatalf("test(%d,%d|%v) diverged: table (%x,%x,%d,%v) vs batch (%x,%x,%d,%v)",
						x, y, z,
						math.Float64bits(g.Stat), math.Float64bits(g.P), g.Dof, g.Reliant,
						math.Float64bits(w.Stat), math.Float64bits(w.P), w.Dof, w.Reliant)
				}
			}
		}
	}
}

func TestMergeEqualsBatch(t *testing.T) {
	d := randData(t, 3000, 21)
	whole := FromData(d)

	// Any partition of the rows merges back to the batch table.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		cuts := []int{0}
		for cuts[len(cuts)-1] < d.N() {
			cuts = append(cuts, cuts[len(cuts)-1]+1+rng.Intn(900))
		}
		cuts[len(cuts)-1] = d.N()
		merged := New(CardsOf(whole))
		for i := 0; i+1 < len(cuts); i++ {
			if err := merged.Merge(FromRows(d, cuts[i], cuts[i+1])); err != nil {
				t.Fatal(err)
			}
		}
		if !merged.Equal(whole) {
			t.Fatalf("trial %d: merged partition != batch table", trial)
		}
	}
	// And the merged table's tests are bit-identical to GTest over rows.
	assertTesterIdentity(t, whole, stats.Tester(d))
}

func TestSubtractInverseOfMerge(t *testing.T) {
	d := randData(t, 2000, 22)
	a := FromRows(d, 0, 1200)
	b := FromRows(d, 1200, 2000)
	orig := a.Clone()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Equal(orig) {
		t.Fatal("merge was a no-op")
	}
	if err := a.Subtract(b); err != nil {
		t.Fatal(err)
	}
	// Cards may have grown under the merge (dictionaries never shrink),
	// so compare cells and counts via tests rather than Equal.
	if a.N() != orig.N() || a.Cells() != orig.Cells() {
		t.Fatalf("subtract did not invert merge: n %d vs %d, cells %d vs %d",
			a.N(), orig.N(), a.Cells(), orig.Cells())
	}
	assertTesterIdentity(t, a, orig)

	// Subtracting mass that was never merged is an error.
	if err := orig.Subtract(b); err == nil {
		t.Fatal("subtracting a never-merged table must fail")
	}
	// The failed subtract must not have corrupted orig.
	if orig.N() != 1200 {
		t.Fatalf("failed subtract mutated the table: n=%d", orig.N())
	}
}

func TestRingSlidingWindowBitIdentical(t *testing.T) {
	d := randData(t, 4000, 23)
	const winRows, winCap = 250, 6
	ring := NewRing(winCap)
	for w := 0; (w+1)*winRows <= d.N(); w++ {
		if _, err := ring.Push(FromRows(d, w*winRows, (w+1)*winRows)); err != nil {
			t.Fatal(err)
		}
		lo := 0
		if live := w + 1; live > winCap {
			lo = (live - winCap) * winRows
		}
		hi := (w + 1) * winRows
		fresh := FromRows(d, lo, hi)
		if !ring.Aggregate().Equal(fresh) {
			t.Fatalf("window %d: ring aggregate != from-scratch recompute over rows [%d,%d)", w, lo, hi)
		}
		// Spot-check a CI test against a raw row scan of the same range.
		want, err := stats.GTest(Slice(d, lo, hi), 0, 2, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ring.Aggregate().Test(0, 2, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if !sameBits(got, want) {
			t.Fatalf("window %d: sliding test diverged from row scan", w)
		}
	}
	if ring.Len() != winCap {
		t.Fatalf("ring kept %d windows, cap %d", ring.Len(), winCap)
	}
}

// TestPCOnTablesMatchesBatch pins the acceptance criterion: PC run over
// merged windowed tables produces the same CPDAG as a from-scratch run
// on the equivalent concatenated data, at workers 1, 4, and 8.
func TestPCOnTablesMatchesBatch(t *testing.T) {
	d := randData(t, 6000, 24)
	merged := New(CardsOf(stats.Tester(d)))
	const win = 500
	for lo := 0; lo < d.N(); lo += win {
		hi := lo + win
		if hi > d.N() {
			hi = d.N()
		}
		if err := merged.Merge(FromRows(d, lo, hi)); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, 8} {
		batch, err := pc.Learn(d, pc.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		windowed, err := pc.LearnFrom(merged, pc.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if windowed.CPDAG.String() != batch.CPDAG.String() {
			t.Fatalf("workers=%d: CPDAG from merged tables diverged:\nwindowed %s\nbatch    %s",
				workers, windowed.CPDAG, batch.CPDAG)
		}
		if windowed.Tests != batch.Tests {
			t.Fatalf("workers=%d: test counts diverged: %d vs %d", workers, windowed.Tests, batch.Tests)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := randData(t, 1500, 25)
	tab := FromData(d)
	blob, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: equal tables marshal to equal bytes.
	blob2, err := tab.Clone().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("serialization is not deterministic")
	}
	var back Table
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tab) {
		t.Fatal("round trip lost statistics")
	}
	assertTesterIdentity(t, &back, tab)

	// Corrupt inputs are rejected, never panicking.
	for _, bad := range [][]byte{nil, []byte("x"), []byte("GRIT1"), blob[:len(blob)-1]} {
		var tb Table
		if err := tb.UnmarshalBinary(bad); err == nil {
			t.Fatalf("corrupt blob %q accepted", bad)
		}
	}
}

func TestDetectDrift(t *testing.T) {
	d := randData(t, 6000, 26)
	baseline := FromRows(d, 0, 3000)
	stationary := FromRows(d, 3000, 6000)
	rep := DetectDrift(baseline, stationary, 1e-4)
	if rep.Any() {
		t.Fatalf("stationary split flagged drift: %+v", rep.DriftedVars())
	}

	// Shift one variable's marginal hard: point-mass on a single code.
	nv := baseline.NumVars()
	shifted := New(CardsOf(baseline))
	row := make([]int32, nv)
	for r := 0; r < 800; r++ {
		for i := 0; i < nv; i++ {
			row[i] = d.Codes(i)[3000+r]
		}
		row[1] = 0
		shifted.Add(row)
	}
	rep = DetectDrift(baseline, shifted, 1e-4)
	if !rep.Any() {
		t.Fatal("hard marginal shift not detected")
	}
	found := false
	for _, v := range rep.DriftedVars() {
		if v == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("shifted variable 1 not among drifted vars %v", rep.DriftedVars())
	}
	dirty := rep.Dirty(nv)
	if !dirty[1] {
		t.Fatal("Dirty vector missed the shifted variable")
	}

	// Empty window: nothing to compare, no drift.
	if DetectDrift(baseline, New(CardsOf(baseline)), 0.5).Any() {
		t.Fatal("empty window flagged drift")
	}
}

func TestRingMisc(t *testing.T) {
	if NewRing(1).N() != 0 {
		t.Fatal("empty ring has observations")
	}
	d := randData(t, 600, 27)
	ring := NewRing(2)
	w0 := FromRows(d, 0, 200)
	if exp, err := ring.Push(w0); err != nil || exp != nil {
		t.Fatalf("push 0: %v %v", exp, err)
	}
	if _, err := ring.Push(FromRows(d, 200, 400)); err != nil {
		t.Fatal(err)
	}
	exp, err := ring.Push(FromRows(d, 400, 600))
	if err != nil {
		t.Fatal(err)
	}
	if exp != w0 {
		t.Fatal("expired window is not the oldest")
	}
	if ring.N() != 400 || ring.Window(0).N() != 200 {
		t.Fatalf("ring bookkeeping off: n=%d", ring.N())
	}
}
