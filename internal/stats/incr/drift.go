package incr

import (
	"math"

	"github.com/guardrail-db/guardrail/internal/stats"
)

// VarDrift is the drift verdict for one variable: a G-test of
// homogeneity between its baseline and window marginal distributions.
type VarDrift struct {
	Var     int
	Stat    float64
	Dof     int
	P       float64
	Drifted bool
}

// DriftReport collects per-variable drift verdicts for one comparison.
type DriftReport struct {
	Vars []VarDrift
}

// Any reports whether any variable drifted.
func (r DriftReport) Any() bool {
	for _, v := range r.Vars {
		if v.Drifted {
			return true
		}
	}
	return false
}

// DriftedVars returns the indices of drifted variables, ascending.
func (r DriftReport) DriftedVars() []int {
	var out []int
	for _, v := range r.Vars {
		if v.Drifted {
			out = append(out, v.Var)
		}
	}
	return out
}

// Dirty renders the report as the dirty-flag vector pc.LearnWarm
// consumes: dirty[i] is true when variable i's marginal drifted.
func (r DriftReport) Dirty(numVars int) []bool {
	dirty := make([]bool, numVars)
	for _, v := range r.Vars {
		if v.Drifted && v.Var < numVars {
			dirty[v.Var] = true
		}
	}
	return dirty
}

// DetectDrift compares each variable's marginal distribution in window
// against baseline with a G-test of homogeneity on the 2×k contingency
// table (baseline counts vs window counts over the k observed
// categories, missing included) and flags variables whose p-value falls
// at or below alpha. Small samples (dof 0, or either side empty) never
// flag — matching the conservative stance the CI tests take on sparse
// tables. The scan is over fixed-order slices, so the report is a pure
// function of the two tables.
func DetectDrift(baseline, window *Table, alpha float64) DriftReport {
	nv := baseline.NumVars()
	if window.NumVars() < nv {
		nv = window.NumVars()
	}
	rep := DriftReport{Vars: make([]VarDrift, 0, nv)}
	for i := 0; i < nv; i++ {
		b := baseline.Marginal(i)
		w := window.Marginal(i)
		rep.Vars = append(rep.Vars, driftOne(i, b, w, alpha))
	}
	return rep
}

// driftOne runs the 2×k homogeneity G-test for one variable. The two
// marginals may have different lengths when one table's dictionary grew;
// the shorter is treated as zero-padded.
func driftOne(i int, b, w []int64, alpha float64) VarDrift {
	k := len(b)
	if len(w) > k {
		k = len(w)
	}
	at := func(m []int64, j int) float64 {
		if j < len(m) {
			return float64(m[j])
		}
		return 0
	}
	var nb, nw float64
	for j := 0; j < k; j++ {
		nb += at(b, j)
		nw += at(w, j)
	}
	d := VarDrift{Var: i, P: 1}
	total := nb + nw
	if nb == 0 || nw == 0 {
		return d // nothing to compare against
	}
	nzCols := 0
	var g float64
	for j := 0; j < k; j++ {
		ob, ow := at(b, j), at(w, j)
		col := ob + ow
		if col == 0 {
			continue
		}
		nzCols++
		if ob > 0 {
			g += 2 * ob * math.Log(ob/(nb*col/total))
		}
		if ow > 0 {
			g += 2 * ow * math.Log(ow/(nw*col/total))
		}
	}
	if nzCols < 2 {
		return d
	}
	d.Stat = g
	d.Dof = nzCols - 1
	if p, err := stats.ChiSquareSurvival(g, d.Dof); err == nil {
		d.P = p
		d.Drifted = p <= alpha
	}
	return d
}
