package incr

import (
	"bytes"
	"testing"
)

// FuzzTableCodec feeds arbitrary bytes to the table decoder: it must
// reject or accept without panicking, and anything it accepts must
// re-marshal to a canonical form that round-trips to an equal table.
func FuzzTableCodec(f *testing.F) {
	seed := New([]int{2, 3})
	seed.Add([]int32{0, 2})
	seed.Add([]int32{1, -1})
	seed.AddN([]int32{0, 0}, 7)
	blob, _ := seed.MarshalBinary()
	f.Add(blob)
	f.Add([]byte("GRIT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tab Table
		if err := tab.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := tab.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted table failed to marshal: %v", err)
		}
		var back Table
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !back.Equal(&tab) {
			t.Fatal("round trip changed the table")
		}
		out2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("canonical form is not a fixed point")
		}
	})
}
