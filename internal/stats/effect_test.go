package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func deterministicPair(n int) (x, y []int32) {
	rng := rand.New(rand.NewSource(1))
	x = make([]int32, n)
	y = make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(4))
		y[i] = x[i] // perfect association
	}
	return x, y
}

func independentPair(n int) (x, y []int32) {
	rng := rand.New(rand.NewSource(2))
	x = make([]int32, n)
	y = make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(4))
		y[i] = int32(rng.Intn(4))
	}
	return x, y
}

func TestCramersVExtremes(t *testing.T) {
	x, y := deterministicPair(4000)
	v, err := CramersV(x, y, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.99 {
		t.Fatalf("perfect association V = %g", v)
	}
	x, y = independentPair(4000)
	v, err = CramersV(x, y, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.1 {
		t.Fatalf("independent V = %g", v)
	}
}

func TestCramersVErrors(t *testing.T) {
	if _, err := CramersV([]int32{1}, []int32{1, 2}, 2, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := CramersV(nil, nil, 2, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	// Constant columns have k <= 1: association is 0 by convention.
	v, err := CramersV([]int32{0, 0, 0}, []int32{1, 2, 0}, 1, 3)
	if err != nil || v != 0 {
		t.Fatalf("constant column: v=%g err=%v", v, err)
	}
}

func TestMutualInformationExtremes(t *testing.T) {
	x, y := deterministicPair(4000)
	mi, err := MutualInformation(x, y, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Entropy(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-h) > 0.01 {
		t.Fatalf("I(X;X) = %g, H(X) = %g", mi, h)
	}
	x, y = independentPair(4000)
	mi, err = MutualInformation(x, y, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 0.01 {
		t.Fatalf("independent MI = %g", mi)
	}
}

func TestEntropyUniform(t *testing.T) {
	x := []int32{0, 1, 2, 3, 0, 1, 2, 3}
	h, err := Entropy(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-math.Log(4)) > 1e-9 {
		t.Fatalf("H = %g, want ln 4", h)
	}
	if _, err := Entropy(nil, 2); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMissingCodesHandled(t *testing.T) {
	x := []int32{-1, 0, 1, -1}
	y := []int32{0, 0, 1, 1}
	if _, err := CramersV(x, y, 2, 2); err != nil {
		t.Fatalf("CramersV with missing: %v", err)
	}
	if _, err := MutualInformation(x, y, 2, 2); err != nil {
		t.Fatalf("MI with missing: %v", err)
	}
	if _, err := Entropy(x, 2); err != nil {
		t.Fatalf("Entropy with missing: %v", err)
	}
}

// Properties: V in [0,1]; MI >= 0 and symmetric.
func TestEffectSizeProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 8 {
			return true
		}
		n := len(raw) / 2
		x := make([]int32, n)
		y := make([]int32, n)
		for i := 0; i < n; i++ {
			x[i] = int32(raw[i] % 5)
			y[i] = int32(raw[n+i] % 3)
		}
		v, err := CramersV(x, y, 5, 3)
		if err != nil || v < -1e-9 || v > 1+1e-9 {
			return false
		}
		mi, err := MutualInformation(x, y, 5, 3)
		if err != nil || mi < 0 {
			return false
		}
		mi2, err := MutualInformation(y, x, 3, 5)
		if err != nil || math.Abs(mi-mi2) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
