// Package stats implements the statistical machinery the Guardrail
// reproduction needs with no dependencies beyond the standard library:
// special functions (incomplete gamma/beta), chi-square and G² tests,
// conditional-independence testing for discrete data, and the evaluation
// metrics (F1, MCC, Spearman's ρ) used in §8 of the paper.
package stats

import (
	"errors"
	"math"
)

// ErrNoConverge is returned when an iterative special-function evaluation
// fails to converge; callers should treat the test as inconclusive.
var ErrNoConverge = errors.New("stats: series did not converge")

const (
	maxIter = 500
	epsTol  = 3e-14
	tiny    = 1e-300
)

// GammaIncLower returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a), for a > 0, x >= 0.
func GammaIncLower(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN(), errors.New("stats: GammaIncLower requires a > 0")
	case x < 0:
		return math.NaN(), errors.New("stats: GammaIncLower requires x >= 0")
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return p, err
	}
	q, err := gammaContinuedFraction(a, x)
	return 1 - q, err
}

// GammaIncUpper returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncUpper(a, x float64) (float64, error) {
	if x < a+1 {
		p, err := GammaIncLower(a, x)
		return 1 - p, err
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series (x < a+1).
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsTol {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// gammaContinuedFraction evaluates Q(a,x) by Lentz's continued fraction
// (x >= a+1).
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsTol {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// ChiSquareSurvival returns P(X >= x) for a chi-square variable with k
// degrees of freedom — the p-value of a chi-square/G² statistic.
func ChiSquareSurvival(x float64, k int) (float64, error) {
	if k <= 0 {
		return math.NaN(), errors.New("stats: chi-square needs dof > 0")
	}
	if x <= 0 {
		return 1, nil
	}
	return GammaIncUpper(float64(k)/2, x/2)
}

// BetaInc returns the regularized incomplete beta function I_x(a, b),
// used for Student-t tail probabilities.
func BetaInc(a, b, x float64) (float64, error) {
	if x < 0 || x > 1 {
		return math.NaN(), errors.New("stats: BetaInc requires 0 <= x <= 1")
	}
	if x == 0 || x == 1 {
		return x, nil
	}
	lga, _ := math.Lgamma(a + b)
	lgb, _ := math.Lgamma(a)
	lgc, _ := math.Lgamma(b)
	bt := math.Exp(lga - lgb - lgc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		return bt * cf / a, err
	}
	cf, err := betaCF(b, a, 1-x)
	return 1 - bt*cf/b, err
}

func betaCF(a, b, x float64) (float64, error) {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsTol {
			return h, nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// StudentTSurvival returns the two-sided p-value P(|T| >= t) for a Student-t
// variable with nu degrees of freedom.
func StudentTSurvival(t float64, nu float64) (float64, error) {
	if nu <= 0 {
		return math.NaN(), errors.New("stats: Student-t needs dof > 0")
	}
	x := nu / (nu + t*t)
	return BetaInc(nu/2, 0.5, x)
}
