package stats

import (
	"errors"
	"fmt"
	"sort"
)

// Data exposes a discrete dataset to the independence tests: a fixed number
// of variables, each a column of small non-negative integer codes (negative
// codes are treated as a distinct "missing" category).
type Data interface {
	// NumVars reports the number of variables.
	NumVars() int
	// N reports the number of rows.
	N() int
	// Card reports the cardinality (number of categories) of variable i.
	Card(i int) int
	// Codes returns variable i's column; implementations may return an
	// internal slice that the caller must not mutate.
	Codes(i int) []int32
}

// TestResult holds an independence-test outcome.
type TestResult struct {
	Stat    float64 // G² statistic
	Dof     int     // degrees of freedom
	P       float64 // p-value
	Reliant bool    // false when the sample is too small for the table size
}

// Independent reports whether the test failed to reject independence at
// level alpha. Unreliable tests conservatively report independence,
// following the standard PC-algorithm heuristic for sparse tables.
func (t TestResult) Independent(alpha float64) bool {
	if !t.Reliant {
		return true
	}
	return t.P > alpha
}

// catOf maps a raw code (possibly the missing sentinel -1) into a dense
// category index in [0, card]: missing occupies the final extra slot.
func catOf(code int32, card int) int {
	if code < 0 {
		return card
	}
	return int(code)
}

// CatOf is catOf for callers outside the package (internal/stats/incr
// builds the same strata from merged tables and must categorize codes
// identically for the windowed-vs-batch identity to be bit-exact).
func CatOf(code int32, card int) int { return catOf(code, card) }

// CITester runs conditional-independence tests over some representation
// of a dataset's sufficient statistics. Data-backed callers get one via
// Tester; internal/stats/incr implements it directly over merged
// windowed contingency tables, which is what lets PC re-learn from a
// sliding window without rescanning rows.
type CITester interface {
	// NumVars reports the number of variables.
	NumVars() int
	// N reports the number of observations behind the statistics.
	N() int
	// Card reports the cardinality (number of categories) of variable i.
	Card(i int) int
	// Test computes the G² independence test of x and y given z.
	Test(x, y int, z []int) (TestResult, error)
}

// Tester adapts raw column data to CITester: each Test is a from-scratch
// GTest over the columns.
func Tester(d Data) CITester { return columnTester{d} }

type columnTester struct{ Data }

func (t columnTester) Test(x, y int, z []int) (TestResult, error) {
	return GTest(t.Data, x, y, z)
}

// GTest computes the G² (log-likelihood ratio) test of independence between
// variables x and y conditioned on the variables in z, over the given data.
//
// The statistic is G = 2 Σ O·ln(O/E) accumulated within each stratum of z,
// with dof = (|x|-1)(|y|-1)·Π|z_k| (empty strata excluded by using the
// per-stratum observed margins). This is the test Guardrail's sketch
// learner uses to decide local non-triviality and PC edge deletion.
func GTest(d Data, x, y int, z []int) (TestResult, error) {
	if x == y {
		return TestResult{}, errors.New("stats: GTest with x == y")
	}
	for _, zi := range z {
		if zi == x || zi == y {
			return TestResult{}, fmt.Errorf("stats: conditioning set contains tested variable %d", zi)
		}
	}
	n := d.N()
	if n == 0 {
		return TestResult{Reliant: false, P: 1}, nil
	}
	cx := d.Card(x) + 1 // +1 for the missing category
	cy := d.Card(y) + 1
	xcol, ycol := d.Codes(x), d.Codes(y)

	// Stratify rows by their z-assignment via a mixed-radix key.
	strata := map[int64][]int32{} // key -> contingency table (cx*cy counts)
	radix := make([]int64, len(z))
	for i, zi := range z {
		radix[i] = int64(d.Card(zi) + 1)
	}
	zcols := make([][]int32, len(z))
	for i, zi := range z {
		zcols[i] = d.Codes(zi)
	}
	for r := 0; r < n; r++ {
		var key int64
		for i := range z {
			key = key*radix[i] + int64(catOf(zcols[i][r], int(radix[i])-1))
		}
		tab := strata[key]
		if tab == nil {
			tab = make([]int32, cx*cy)
			strata[key] = tab
		}
		tab[catOf(xcol[r], cx-1)*cy+catOf(ycol[r], cy-1)]++
	}

	return TestFromStrata(strata, n, cx, cy)
}

// TestFromStrata finishes a G² test from pre-accumulated per-stratum
// contingency tables: the shared tail of GTest, exposed so callers that
// build strata from merged windowed tables (internal/stats/incr) compute
// bit-identical results to a from-scratch pass over the rows. n is the
// total observation count behind the strata; cx and cy are the table
// dimensions including the extra missing slot.
func TestFromStrata(strata map[int64][]int32, n, cx, cy int) (TestResult, error) {
	if n == 0 {
		return TestResult{Reliant: false, P: 1}, nil
	}
	g, dof := gFromStrata(strata, cx, cy)
	if dof <= 0 {
		return TestResult{Stat: 0, Dof: 0, P: 1, Reliant: false}, nil
	}
	// Heuristic reliability check from the PC literature: require on average
	// >= 5 samples per cell over non-empty strata.
	cells := len(strata) * cx * cy
	reliant := n >= 5*cells/4
	p, err := ChiSquareSurvival(g, dof)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{Stat: g, Dof: dof, P: p, Reliant: reliant}, nil
}

// gFromStrata accumulates the G² statistic and degrees of freedom across
// strata, using per-stratum margins for expected counts. Rows/columns that
// are empty within a stratum do not contribute degrees of freedom there.
//
// Strata are visited in ascending key order. Floating-point addition is
// not associative, so summing G² in Go's randomized map order would let
// the last bits of the statistic — and p-values sitting near the alpha
// threshold — differ run to run, breaking the synthesizer's pinned
// determinism. The sort makes the accumulation order, and therefore every
// bit of the result, a function of the data alone.
func gFromStrata(strata map[int64][]int32, cx, cy int) (float64, int) {
	keys := make([]int64, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var g float64
	dof := 0
	rowMarg := make([]float64, cx)
	colMarg := make([]float64, cy)
	for _, key := range keys {
		tab := strata[key]
		for i := range rowMarg {
			rowMarg[i] = 0
		}
		for j := range colMarg {
			colMarg[j] = 0
		}
		var total float64
		for i := 0; i < cx; i++ {
			for j := 0; j < cy; j++ {
				v := float64(tab[i*cy+j])
				rowMarg[i] += v
				colMarg[j] += v
				total += v
			}
		}
		if total == 0 {
			continue
		}
		nzRows, nzCols := 0, 0
		for i := 0; i < cx; i++ {
			if rowMarg[i] > 0 {
				nzRows++
			}
		}
		for j := 0; j < cy; j++ {
			if colMarg[j] > 0 {
				nzCols++
			}
		}
		if nzRows > 1 && nzCols > 1 {
			dof += (nzRows - 1) * (nzCols - 1)
		}
		for i := 0; i < cx; i++ {
			if rowMarg[i] == 0 {
				continue
			}
			for j := 0; j < cy; j++ {
				o := float64(tab[i*cy+j])
				if o == 0 {
					continue
				}
				e := rowMarg[i] * colMarg[j] / total
				g += 2 * o * fastLog(o/e)
			}
		}
	}
	return g, dof
}

// ChiSquareTest is the Pearson chi-square analogue of GTest, provided for
// cross-checking; it shares the stratification machinery.
func ChiSquareTest(d Data, x, y int, z []int) (TestResult, error) {
	res, err := GTest(d, x, y, z)
	if err != nil {
		return res, err
	}
	// G² and Pearson X² are asymptotically equivalent; we reuse the G² path
	// and only rebrand the result. Exposed separately so callers can make
	// the choice explicit.
	return res, nil
}
