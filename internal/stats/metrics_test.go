package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 5 TN, 1 FN
	for i := 0; i < 3; i++ {
		c.Add(true, true)
	}
	c.Add(true, false)
	for i := 0; i < 5; i++ {
		c.Add(false, false)
	}
	c.Add(false, true)
	if !near(c.Precision(), 0.75, 1e-12) {
		t.Fatalf("precision = %g", c.Precision())
	}
	if !near(c.Recall(), 0.75, 1e-12) {
		t.Fatalf("recall = %g", c.Recall())
	}
	if !near(c.F1(), 0.75, 1e-12) {
		t.Fatalf("f1 = %g", c.F1())
	}
	mcc := c.MCC()
	if mcc <= 0 || mcc > 1 {
		t.Fatalf("mcc = %g out of range", mcc)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	c.Add(false, false)
	if !math.IsNaN(c.Precision()) || !math.IsNaN(c.Recall()) || !math.IsNaN(c.F1()) || !math.IsNaN(c.MCC()) {
		t.Fatal("degenerate confusion should yield NaN metrics")
	}
}

func TestMCCPerfectAndInverse(t *testing.T) {
	var p Confusion
	p.TP, p.TN = 10, 10
	if !near(p.MCC(), 1, 1e-12) {
		t.Fatalf("perfect MCC = %g", p.MCC())
	}
	var inv Confusion
	inv.FP, inv.FN = 10, 10
	if !near(inv.MCC(), -1, 1e-12) {
		t.Fatalf("inverse MCC = %g", inv.MCC())
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	rho, p, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !near(rho, 1, 1e-12) {
		t.Fatalf("rho = %g, want 1", rho)
	}
	if p > 1e-6 {
		t.Fatalf("p = %g, want ~0", p)
	}
	yrev := []float64{50, 40, 30, 20, 10}
	rho, _, _ = Spearman(x, yrev)
	if !near(rho, -1, 1e-12) {
		t.Fatalf("rho = %g, want -1", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 4, 5, 6}
	y := []float64{1, 3, 3, 4, 6, 8}
	rho, _, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.9 {
		t.Fatalf("rho with ties = %g, want near 1", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, _, err := Spearman([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected short-input error")
	}
	if _, _, err := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected constant-input error")
	}
}

func TestMinMaxNormalize(t *testing.T) {
	xs := []float64{2, 4, 6}
	MinMaxNormalize(xs)
	want := []float64{0, 0.5, 1}
	for i := range xs {
		if !near(xs[i], want[i], 1e-12) {
			t.Fatalf("xs = %v", xs)
		}
	}
	cs := []float64{3, 3, 3}
	MinMaxNormalize(cs)
	for _, v := range cs {
		if v != 0 {
			t.Fatalf("constant input should map to 0, got %v", cs)
		}
	}
	MinMaxNormalize(nil) // must not panic
}

func TestL1(t *testing.T) {
	d, err := L1Distance([]float64{1, 2}, []float64{3, 0})
	if err != nil || !near(d, 4, 1e-12) {
		t.Fatalf("L1Distance = %g err %v", d, err)
	}
	if _, err := L1Distance([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if n := L1Norm([]float64{-1, 2, -3}); !near(n, 6, 1e-12) {
		t.Fatalf("L1Norm = %g", n)
	}
}

func TestMeanStd(t *testing.T) {
	m, sd := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !near(m, 5, 1e-12) || !near(sd, 2, 1e-12) {
		t.Fatalf("m=%g sd=%g", m, sd)
	}
	m, sd = MeanStd([]float64{math.NaN(), 3})
	if !near(m, 3, 1e-12) || !near(sd, 0, 1e-12) {
		t.Fatalf("NaN not ignored: m=%g sd=%g", m, sd)
	}
	m, _ = MeanStd(nil)
	if !math.IsNaN(m) {
		t.Fatal("empty input should be NaN")
	}
}

// Property: ranks of MinMax-normalized data are preserved.
func TestMinMaxOrderProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		ys := append([]float64(nil), xs...)
		MinMaxNormalize(ys)
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if (xs[i] < xs[j]) != (ys[i] < ys[j]) && xs[i] != xs[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MCC is always within [-1, 1] when defined.
func TestMCCRangeProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		m := c.MCC()
		return math.IsNaN(m) || (m >= -1-1e-9 && m <= 1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
