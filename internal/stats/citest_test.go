package stats

import (
	"math"
	"math/rand"
	"testing"
)

// matrix is a simple in-memory Data implementation for tests.
type matrix struct {
	cols  [][]int32
	cards []int
}

func (m *matrix) NumVars() int        { return len(m.cols) }
func (m *matrix) N() int              { return len(m.cols[0]) }
func (m *matrix) Card(i int) int      { return m.cards[i] }
func (m *matrix) Codes(i int) []int32 { return m.cols[i] }

// genChain samples x -> y -> z so x ⟂ z | y but x ⊥̸ z marginally.
func genChain(n int, seed int64) *matrix {
	rng := rand.New(rand.NewSource(seed))
	x := make([]int32, n)
	y := make([]int32, n)
	z := make([]int32, n)
	for i := 0; i < n; i++ {
		x[i] = int32(rng.Intn(3))
		// y depends strongly on x
		if rng.Float64() < 0.9 {
			y[i] = x[i]
		} else {
			y[i] = int32(rng.Intn(3))
		}
		// z depends strongly on y
		if rng.Float64() < 0.9 {
			z[i] = y[i]
		} else {
			z[i] = int32(rng.Intn(3))
		}
	}
	return &matrix{cols: [][]int32{x, y, z}, cards: []int{3, 3, 3}}
}

func TestGTestDependence(t *testing.T) {
	d := genChain(4000, 1)
	res, err := GTest(d, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Independent(0.05) {
		t.Fatalf("x and y should be dependent: p = %g", res.P)
	}
	res, err = GTest(d, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Independent(0.05) {
		t.Fatalf("x and z should be marginally dependent: p = %g", res.P)
	}
}

func TestGTestConditionalIndependence(t *testing.T) {
	d := genChain(8000, 2)
	res, err := GTest(d, 0, 2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Independent(0.01) {
		t.Fatalf("x ⟂ z | y should hold: p = %g stat = %g", res.P, res.Stat)
	}
}

func TestGTestIndependentVars(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(4))
		y[i] = int32(rng.Intn(4))
	}
	d := &matrix{cols: [][]int32{x, y}, cards: []int{4, 4}}
	res, err := GTest(d, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Independent(0.001) {
		t.Fatalf("independent vars rejected: p = %g", res.P)
	}
}

func TestGTestErrors(t *testing.T) {
	d := genChain(100, 4)
	if _, err := GTest(d, 0, 0, nil); err == nil {
		t.Fatal("expected error for x == y")
	}
	if _, err := GTest(d, 0, 1, []int{0}); err == nil {
		t.Fatal("expected error for conditioning on tested var")
	}
}

func TestGTestEmptyData(t *testing.T) {
	d := &matrix{cols: [][]int32{{}, {}}, cards: []int{2, 2}}
	res, err := GTest(d, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Independent(0.05) {
		t.Fatal("empty data must report independence")
	}
}

func TestGTestMissingCategory(t *testing.T) {
	// Missing codes (-1) must be tolerated as their own category.
	x := []int32{0, 1, -1, 0, 1, -1, 0, 1}
	y := []int32{0, 1, 1, 0, 1, 1, 0, 1}
	d := &matrix{cols: [][]int32{x, y}, cards: []int{2, 2}}
	if _, err := GTest(d, 0, 1, nil); err != nil {
		t.Fatalf("missing category not handled: %v", err)
	}
}

func TestGTestSparseUnreliable(t *testing.T) {
	// 8 rows over a 4x4 table with conditioning: far too sparse; the result
	// must be flagged unreliable and default to independence.
	rng := rand.New(rand.NewSource(5))
	n := 8
	cols := make([][]int32, 3)
	for c := range cols {
		cols[c] = make([]int32, n)
		for i := range cols[c] {
			cols[c][i] = int32(rng.Intn(4))
		}
	}
	d := &matrix{cols: cols, cards: []int{4, 4, 4}}
	res, err := GTest(d, 0, 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliant {
		t.Fatal("sparse test should be flagged unreliable")
	}
	if !res.Independent(0.05) {
		t.Fatal("unreliable test must report independence")
	}
}

// TestGFromStrataDeterministic: G² accumulates floating-point terms across
// strata, and float addition is not associative — iterating the strata map
// in Go's randomized order made the low bits of the statistic (and
// p-values near alpha) differ run to run. The fix iterates strata in
// sorted-key order; this pins bit-identical results across many runs and
// across permuted row insert orders.
func TestGFromStrataDeterministic(t *testing.T) {
	// Many strata with counts of wildly different magnitudes, so any
	// reordering of the float accumulation is near-certain to change the
	// low bits of the sum.
	rng := rand.New(rand.NewSource(11))
	n := 4000
	cols := make([][]int32, 4)
	cards := []int{3, 3, 5, 7}
	for c := range cols {
		cols[c] = make([]int32, n)
		for i := range cols[c] {
			if rng.Intn(97) == 0 {
				cols[c][i] = -1 // missing category exercises the extra slot
				continue
			}
			// Skewed draws give strata with very unequal totals.
			v := rng.Intn(cards[c] * cards[c])
			if v >= cards[c] {
				v = 0
			}
			cols[c][i] = int32(v)
		}
	}
	d := &matrix{cols: cols, cards: cards}
	ref, err := GTest(d, 0, 1, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 50; run++ {
		res, err := GTest(d, 0, 1, []int{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Stat) != math.Float64bits(ref.Stat) ||
			math.Float64bits(res.P) != math.Float64bits(ref.P) || res.Dof != ref.Dof {
			t.Fatalf("run %d: G²/p drifted: got (%x, %x, %d), want (%x, %x, %d)",
				run, math.Float64bits(res.Stat), math.Float64bits(res.P), res.Dof,
				math.Float64bits(ref.Stat), math.Float64bits(ref.P), ref.Dof)
		}
	}
	// Permuting the rows permutes strata-map insertion order but not the
	// data; the statistic must not move by a bit.
	for run := 0; run < 20; run++ {
		perm := rand.New(rand.NewSource(int64(run))).Perm(n)
		pcols := make([][]int32, len(cols))
		for c := range cols {
			pcols[c] = make([]int32, n)
			for i, p := range perm {
				pcols[c][i] = cols[c][p]
			}
		}
		res, err := GTest(&matrix{cols: pcols, cards: cards}, 0, 1, []int{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Stat) != math.Float64bits(ref.Stat) ||
			math.Float64bits(res.P) != math.Float64bits(ref.P) {
			t.Fatalf("permutation %d changed the statistic bits", run)
		}
	}
	// ChiSquareTest shares the stratification machinery and must agree.
	chi, err := ChiSquareTest(d, 0, 1, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(chi.Stat) != math.Float64bits(ref.Stat) {
		t.Fatal("ChiSquareTest disagrees with GTest on the shared path")
	}
}
