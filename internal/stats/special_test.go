package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGammaIncKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		p, err := GammaIncLower(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if !near(p, want, 1e-10) {
			t.Fatalf("P(1,%g) = %g, want %g", x, p, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x))
	for _, x := range []float64{0.2, 1, 3} {
		p, err := GammaIncLower(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x))
		if !near(p, want, 1e-10) {
			t.Fatalf("P(0.5,%g) = %g, want %g", x, p, want)
		}
	}
}

func TestGammaIncComplement(t *testing.T) {
	f := func(aRaw, xRaw uint16) bool {
		a := 0.5 + float64(aRaw%200)/10 // 0.5 .. 20.4
		x := float64(xRaw%400) / 10     // 0 .. 39.9
		p, err1 := GammaIncLower(a, x)
		q, err2 := GammaIncUpper(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return near(p+q, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaIncDomain(t *testing.T) {
	if _, err := GammaIncLower(0, 1); err == nil {
		t.Fatal("expected error for a = 0")
	}
	if _, err := GammaIncLower(1, -1); err == nil {
		t.Fatal("expected error for x < 0")
	}
}

func TestChiSquareSurvivalKnown(t *testing.T) {
	// Critical values: chi2(0.95, 1) = 3.841, chi2(0.95, 5) = 11.070.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.05},
		{11.070, 5, 0.05},
		{6.635, 1, 0.01},
		{0, 3, 1},
	}
	for _, c := range cases {
		p, err := ChiSquareSurvival(c.x, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if !near(p, c.want, 5e-4) {
			t.Fatalf("ChiSquareSurvival(%g, %d) = %g, want %g", c.x, c.k, p, c.want)
		}
	}
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Fatal("expected error for dof = 0")
	}
}

func TestChiSquareMonotone(t *testing.T) {
	prev := 2.0
	for x := 0.0; x < 30; x += 0.5 {
		p, err := ChiSquareSurvival(x, 4)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("survival not monotone at x=%g: %g > %g", x, p, prev)
		}
		prev = p
	}
}

func TestBetaIncKnown(t *testing.T) {
	// I_x(1,1) = x
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v, err := BetaInc(1, 1, x)
		if err != nil {
			t.Fatal(err)
		}
		if !near(v, x, 1e-10) {
			t.Fatalf("I_%g(1,1) = %g", x, v)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3
	for _, x := range []float64{0.1, 0.4, 0.9} {
		v, err := BetaInc(2, 2, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 3*x*x - 2*x*x*x
		if !near(v, want, 1e-10) {
			t.Fatalf("I_%g(2,2) = %g, want %g", x, v, want)
		}
	}
	if _, err := BetaInc(1, 1, 2); err == nil {
		t.Fatal("expected domain error")
	}
}

func TestStudentTSurvivalKnown(t *testing.T) {
	// Two-sided critical values: t(0.975, 10) = 2.228.
	p, err := StudentTSurvival(2.228, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !near(p, 0.05, 1e-3) {
		t.Fatalf("p = %g, want 0.05", p)
	}
	// Symmetric in t.
	p2, _ := StudentTSurvival(-2.228, 10)
	if !near(p, p2, 1e-12) {
		t.Fatalf("not symmetric: %g vs %g", p, p2)
	}
	if _, err := StudentTSurvival(1, 0); err == nil {
		t.Fatal("expected error for dof = 0")
	}
}
