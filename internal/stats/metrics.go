package stats

import (
	"errors"
	"math"
	"sort"
)

func fastLog(x float64) float64 { return math.Log(x) }

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one (predicted, actual) observation.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), or NaN when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or NaN when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or NaN when
// undefined (the paper's tables report NaN in those cells too).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// MCC returns the Matthews correlation coefficient, or NaN when any margin
// is zero.
func (c Confusion) MCC() float64 {
	tp, fp, tn, fn := float64(c.TP), float64(c.FP), float64(c.TN), float64(c.FN)
	den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
	if den == 0 {
		return math.NaN()
	}
	return (tp*tn - fp*fn) / den
}

// Spearman returns Spearman's rank correlation coefficient between x and y
// (average ranks for ties) and its two-sided p-value from the t
// approximation, as used by the paper to relate error counts to
// mis-prediction counts (§5).
func Spearman(x, y []float64) (rho, p float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("stats: Spearman requires equal-length inputs")
	}
	n := len(x)
	if n < 3 {
		return 0, 0, errors.New("stats: Spearman requires at least 3 observations")
	}
	rx, ry := ranks(x), ranks(y)
	mx, my := mean(rx), mean(ry)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0, 0, errors.New("stats: Spearman undefined for constant input")
	}
	rho = num / math.Sqrt(dx*dy)
	if rho >= 1 || rho <= -1 {
		return rho, 0, nil
	}
	t := rho * math.Sqrt(float64(n-2)/(1-rho*rho))
	p, perr := StudentTSurvival(t, float64(n-2))
	if perr != nil {
		return rho, math.NaN(), nil
	}
	return rho, p, nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ranks assigns 1-based average ranks with tie handling.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// MinMaxNormalize rescales xs into [0,1] in place; a constant slice maps to
// all zeros. Used to put the 48 query errors of Fig. 6 on one scale.
func MinMaxNormalize(xs []float64) {
	if len(xs) == 0 {
		return
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - lo) / (hi - lo)
	}
}

// L1Distance returns Σ|a_i - b_i|; slices must have equal length.
func L1Distance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: L1Distance requires equal-length inputs")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s, nil
}

// L1Norm returns Σ|a_i|.
func L1Norm(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += math.Abs(x)
	}
	return s
}

// MeanStd returns the mean and (population) standard deviation of xs,
// ignoring NaNs. Used for the "0.87 ± 0.25" style aggregates in §8.2.
func MeanStd(xs []float64) (m, sd float64) {
	var s, n float64
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		s += x
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	m = s / n
	var v float64
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / n)
}
