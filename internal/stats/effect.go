package stats

import (
	"errors"
	"math"
)

// CramersV computes Cramér's V — a [0,1] effect size for the association
// between two discrete variables — from their codes. Unlike the G² p-value
// it does not grow with sample size, so it is the right lens for ranking
// edge strengths when diagnosing learned structures.
func CramersV(x, y []int32, cardX, cardY int) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: CramersV requires equal-length inputs")
	}
	n := len(x)
	if n == 0 {
		return 0, errors.New("stats: CramersV on empty input")
	}
	cx, cy := cardX+1, cardY+1 // extra slot for missing
	tab := make([]float64, cx*cy)
	for i := 0; i < n; i++ {
		tab[catOf(x[i], cx-1)*cy+catOf(y[i], cy-1)]++
	}
	rows := make([]float64, cx)
	cols := make([]float64, cy)
	for i := 0; i < cx; i++ {
		for j := 0; j < cy; j++ {
			rows[i] += tab[i*cy+j]
			cols[j] += tab[i*cy+j]
		}
	}
	var chi2 float64
	for i := 0; i < cx; i++ {
		if rows[i] == 0 {
			continue
		}
		for j := 0; j < cy; j++ {
			if cols[j] == 0 {
				continue
			}
			e := rows[i] * cols[j] / float64(n)
			d := tab[i*cy+j] - e
			chi2 += d * d / e
		}
	}
	nzR, nzC := 0, 0
	for _, r := range rows {
		if r > 0 {
			nzR++
		}
	}
	for _, c := range cols {
		if c > 0 {
			nzC++
		}
	}
	k := math.Min(float64(nzR), float64(nzC))
	if k <= 1 {
		return 0, nil
	}
	return math.Sqrt(chi2 / (float64(n) * (k - 1))), nil
}

// MutualInformation estimates I(X; Y) in nats from paired codes — the
// information-theoretic weight of a candidate GIVEN/ON edge.
func MutualInformation(x, y []int32, cardX, cardY int) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: MutualInformation requires equal-length inputs")
	}
	n := len(x)
	if n == 0 {
		return 0, errors.New("stats: MutualInformation on empty input")
	}
	cx, cy := cardX+1, cardY+1
	joint := make([]float64, cx*cy)
	px := make([]float64, cx)
	py := make([]float64, cy)
	for i := 0; i < n; i++ {
		a, b := catOf(x[i], cx-1), catOf(y[i], cy-1)
		joint[a*cy+b]++
		px[a]++
		py[b]++
	}
	inv := 1 / float64(n)
	var mi float64
	for a := 0; a < cx; a++ {
		for b := 0; b < cy; b++ {
			j := joint[a*cy+b] * inv
			if j == 0 {
				continue
			}
			mi += j * math.Log(j/(px[a]*inv*py[b]*inv))
		}
	}
	if mi < 0 {
		mi = 0 // float fuzz
	}
	return mi, nil
}

// Entropy estimates H(X) in nats from codes.
func Entropy(x []int32, card int) (float64, error) {
	if len(x) == 0 {
		return 0, errors.New("stats: Entropy on empty input")
	}
	c := card + 1
	counts := make([]float64, c)
	for _, v := range x {
		counts[catOf(v, c-1)]++
	}
	inv := 1 / float64(len(x))
	var h float64
	for _, cnt := range counts {
		if cnt == 0 {
			continue
		}
		p := cnt * inv
		h -= p * math.Log(p)
	}
	return h, nil
}
