// Package guardrail's root benchmarks regenerate every table and figure of
// the paper's evaluation (one testing.B bench per artifact; see DESIGN.md
// §4 for the index) plus the ablation benches for the design choices
// DESIGN.md calls out: the statement-level cache, predicate pushdown, and
// MEC enumeration vs the unconstrained orientation space.
//
// Benches run at a small scale so `go test -bench=.` stays laptop-sized;
// `cmd/experiments -scale 1.0` reproduces the full-size runs recorded in
// EXPERIMENTS.md.
package guardrail_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
	"github.com/guardrail-db/guardrail/internal/errgen"
	"github.com/guardrail-db/guardrail/internal/experiments"
	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/ml"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/pc"
	"github.com/guardrail-db/guardrail/internal/repair"
	"github.com/guardrail-db/guardrail/internal/sketch"
	"github.com/guardrail-db/guardrail/internal/smt"
	"github.com/guardrail-db/guardrail/internal/sqlexec"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// benchCfg keeps per-iteration work small while touching every code path.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.02, Seed: 1, Datasets: []int{2, 6}}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchCfg(), 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMTBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SMTBaseline(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- pipeline-stage benches ---

func BenchmarkAuxSampling(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := auxdist.Sample(rel, auxdist.Options{Shifts: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCLearn(b *testing.B) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 10, Seed: 3}).Sample(3000, 3)
	if err != nil {
		b.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Shifts: 8, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Learn(aux, pc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeEndToEnd(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Synthesize(rel, core.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeTraced is the overhead counterpart of
// BenchmarkSynthesizeEndToEnd: the identical pipeline with a live tracer
// attached. The acceptance budget is ≤5% over the untraced bench —
// compare the two with benchstat (or eyeball ns/op) after
// `go test -bench 'SynthesizeEndToEnd|SynthesizeTraced' -benchtime 10x .`
func BenchmarkSynthesizeTraced(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.New(1)
		if _, err := core.Synthesize(rel, core.Options{Seed: 1, Trace: tr.Root()}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- guard-engine benches (DESIGN.md §13) ---
//
// Each bench runs the same guard on the AST interpreter and on the
// compiled engine (internal/dsl/compile); the compiled/ast ns/op ratio is
// the translation-validated speedup the compile pipeline buys. The dirty
// relation carries injected errors so the violation paths stay hot.

// benchGuardFixture synthesizes a postal-chain program and a lightly
// corrupted relation for the engine benches. The 256-code chain yields
// GIVEN-group statements with hundreds of branches — the dictionary-scale
// regime the decision-table dispatch is built for; the interpreter scans
// half the branch list per statement on an average row.
func benchGuardFixture(b *testing.B) (*dsl.Program, *dataset.Relation) {
	b.Helper()
	rel, err := bn.PostalChain(256).Sample(6000, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Synthesize(rel, core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	dirty := rel.Clone()
	if _, err := errgen.Inject(dirty, errgen.Options{Rate: 0.01, MinErrors: 20, Seed: 2}); err != nil {
		b.Fatal(err)
	}
	return res.Program, dirty
}

// benchGuardEngines runs fn once per engine under a sub-bench.
func benchGuardEngines(b *testing.B, prog *dsl.Program, strategy core.Strategy, fn func(b *testing.B, g *core.Guard)) {
	b.Helper()
	for _, engine := range []core.Engine{core.EngineAST, core.EngineCompiled} {
		b.Run("engine="+engine.String(), func(b *testing.B) {
			g := core.NewGuard(prog, strategy)
			if engine == core.EngineCompiled {
				if _, err := g.Compile(compile.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			fn(b, g)
		})
	}
}

func BenchmarkGuardCheckRow(b *testing.B) {
	prog, rel := benchGuardFixture(b)
	row := rel.Row(0, nil)
	benchGuardEngines(b, prog, core.Ignore, func(b *testing.B, g *core.Guard) {
		for i := 0; i < b.N; i++ {
			if _, err := g.CheckRow(row); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGuardApply(b *testing.B) {
	prog, rel := benchGuardFixture(b)
	benchGuardEngines(b, prog, core.Ignore, func(b *testing.B, g *core.Guard) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Apply(rel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGuardStreamCSV(b *testing.B) {
	prog, rel := benchGuardFixture(b)
	var src bytes.Buffer
	if err := rel.ToCSV(&src); err != nil {
		b.Fatal(err)
	}
	benchGuardEngines(b, prog, core.Ignore, func(b *testing.B, g *core.Guard) {
		for i := 0; i < b.N; i++ {
			if _, err := g.StreamCSV(bytes.NewReader(src.Bytes()), io.Discard, rel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGuardCompile prices the compilation itself — the one-time cost
// the per-row speedup amortizes.
func BenchmarkGuardCompile(b *testing.B) {
	prog, _ := benchGuardFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compile.Compile(prog, compile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- worker-pool scaling benches (DESIGN.md §9) ---
//
// Each bench sweeps the pipeline's Workers option so the CI bench lane can
// print serial-vs-parallel speedups from one run. Results are identical at
// every worker count (see the determinism regression tests); only
// wall-clock changes.

var workerCounts = []int{1, 2, 4, 8}

func BenchmarkAuxSamplingWorkers(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := auxdist.Sample(rel, auxdist.Options{Shifts: 8, Seed: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPCLearnWorkers(b *testing.B) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 10, Seed: 3}).Sample(3000, 3)
	if err != nil {
		b.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Shifts: 8, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pc.Learn(aux, pc.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFillWorkers times the Alg. 2 inner loop — LNT screening,
// statement filling, verification, and coverage scoring across the MEC —
// at each worker count, on a fixed pre-enumerated MEC.
func BenchmarkFillWorkers(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	learned, err := pc.Learn(aux, pc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dags, err := graph.EnumerateMEC(learned.CPDAG, 256)
	if err != nil && err != graph.ErrEnumLimit {
		b.Fatal(err)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := synth.SelectProgram(rel, dags, aux, synth.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSynthesizeWorkers is the headline scaling bench: the end-to-end
// pipeline (aux sampling, PC, MEC enumeration, filling, selection) on an
// experiment relation at each worker count.
func BenchmarkSynthesizeWorkers(b *testing.B) {
	spec, err := bn.SpecByID(2)
	if err != nil {
		b.Fatal(err)
	}
	rel, err := spec.Generate(0.15, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(rel, core.Options{Seed: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation benches (DESIGN.md §6) ---

// BenchmarkStatementCache measures Alg. 1 filling across a MEC with and
// without the statement-level cache of §7.
func BenchmarkStatementCache(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	learned, err := pc.Learn(aux, pc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dags, err := graph.EnumerateMEC(learned.CPDAG, 64)
	if err != nil && err != graph.ErrEnumLimit {
		b.Fatal(err)
	}
	sketches := make([]sketch.Prog, len(dags))
	for i, d := range dags {
		sketches[i] = sketch.FromDAG(d)
	}
	b.Run("with-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := &synth.StatementCache{}
			for _, sk := range sketches {
				synth.FillProgram(rel, sk, synth.FillOptions{}, cache)
			}
		}
	})
	b.Run("without-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, sk := range sketches {
				synth.FillProgram(rel, sk, synth.FillOptions{}, nil)
			}
		}
	})
}

// BenchmarkDedup measures the Alg. 2 inner loop with and without
// equivalence-driven candidate dedup: canonicalization cost up front
// against coverage scoring saved on semantically duplicate fills. The
// selected program is identical either way (see the synth selection
// tests).
func BenchmarkDedup(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	learned, err := pc.Learn(aux, pc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dags, err := graph.EnumerateMEC(learned.CPDAG, 256)
	if err != nil && err != graph.ErrEnumLimit {
		b.Fatal(err)
	}
	b.Run("with-dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := synth.SelectProgram(rel, dags, aux, synth.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := synth.SelectProgram(rel, dags, aux, synth.Options{NoDedup: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPushdown measures the SQL executor with and without predicate
// pushdown below the ML prediction step.
func BenchmarkPushdown(b *testing.B) {
	rel, err := bn.Hospital().Sample(6000, 1)
	if err != nil {
		b.Fatal(err)
	}
	rel.SetName("hospital")
	model, err := ml.Train(rel, rel.AttrIndex("dysp"))
	if err != nil {
		b.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM hospital WHERE floor = 'floor_v0' AND PREDICT(dysp) = 'dysp_v0'"
	models := map[string]ml.Model{"dysp": model}
	b.Run("with-pushdown", func(b *testing.B) {
		env := &sqlexec.Env{Models: models}
		for i := 0; i < b.N; i++ {
			if _, err := sqlexec.Exec(q, rel, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-pushdown", func(b *testing.B) {
		env := &sqlexec.Env{Models: models, DisablePushdown: true}
		for i := 0; i < b.N; i++ {
			if _, err := sqlexec.Exec(q, rel, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMECvsOrientations contrasts the two search spaces of Table 7 on
// one skeleton: enumerating the MEC vs counting all acyclic orientations.
func BenchmarkMECvsOrientations(b *testing.B) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 8, Seed: 5}).Sample(3000, 5)
	if err != nil {
		b.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	learned, err := pc.Learn(aux, pc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.EnumerateMEC(learned.CPDAG, 0); err != nil && err != graph.ErrEnumLimit {
				b.Fatal(err)
			}
		}
	})
	b.Run("orientations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.CountAcyclicOrientations(learned.CPDAG, 1<<20)
		}
	})
}

// BenchmarkRepair contrasts per-statement rectify with holistic
// minimal-edit repair on corrupted rows.
func BenchmarkRepair(b *testing.B) {
	rel, err := bn.PostalChain(16).Sample(3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	dirty := rel.Row(0, nil)
	dirty[1] = rel.Intern(1, "gibbon")
	b.Run("rectify", func(b *testing.B) {
		row := make([]int32, len(dirty))
		for i := 0; i < b.N; i++ {
			copy(row, dirty)
			res.Program.Rectify(row)
		}
	})
	b.Run("holistic", func(b *testing.B) {
		r := repair.New(res.Program, repair.Options{})
		row := make([]int32, len(dirty))
		for i := 0; i < b.N; i++ {
			copy(row, dirty)
			r.Repair(row)
		}
	})
}

// BenchmarkSMTEncode sizes the monolithic encoding (§8.3) repeatedly.
func BenchmarkSMTEncode(b *testing.B) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 15, Seed: 6}).Sample(1000, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smt.Encode(rel, 3)
	}
}
