// Command guardrail synthesizes integrity constraints from CSV data and
// enforces them, exposing the paper's full offline/online workflow:
//
//	guardrail gen     -dataset 2 -scale 0.1 -out data.csv
//	guardrail synth   -in data.csv -eps 0.02 -out constraints.gr
//	guardrail check   -in dirty.csv -prog constraints.gr
//	guardrail rectify -in dirty.csv -prog constraints.gr -out clean.csv
//	guardrail show    -in data.csv
//	guardrail analyze -in data.csv -prog constraints.gr
//	guardrail lint    -in data.csv -prog constraints.gr
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/verify"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guardrail:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: guardrail <gen|synth|check|rectify|show|analyze|lint> [flags]")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "synth":
		return cmdSynth(args[1:])
	case "check":
		return cmdCheck(args[1:], false)
	case "rectify":
		return cmdCheck(args[1:], true)
	case "show":
		return cmdShow(args[1:])
	case "analyze":
		return cmdAnalyze(args[1:])
	case "lint":
		return cmdLint(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func loadCSV(path string) (*dataset.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.FromCSV(f, path)
}

func writeCSV(rel *dataset.Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rel.ToCSV(f)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	id := fs.Int("dataset", 2, "Table 2 dataset id (1-12)")
	scale := fs.Float64("scale", 0.1, "row-count scale in (0,1]")
	seed := fs.Int64("seed", 1, "sampling seed")
	out := fs.String("out", "data.csv", "output CSV path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := bn.SpecByID(*id)
	if err != nil {
		return err
	}
	rel, err := spec.Generate(*scale, *seed)
	if err != nil {
		return err
	}
	if err := writeCSV(rel, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows x %d attrs of %q to %s\n", rel.NumRows(), rel.NumAttrs(), spec.Name, *out)
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	in := fs.String("in", "", "training CSV (required)")
	out := fs.String("out", "", "output constraint file (default: stdout)")
	eps := fs.Float64("eps", 0.02, "epsilon-validity threshold")
	seed := fs.Int64("seed", 1, "sampling seed")
	identity := fs.Bool("identity-sampler", false, "disable the auxiliary-distribution sampler")
	asJSON := fs.Bool("json", false, "emit the program as JSON instead of the surface syntax")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker-pool size; 1 forces the serial pipeline")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("synth: -in is required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	reg, finish, err := of.start("synth")
	if err != nil {
		return err
	}
	res, err := core.Synthesize(rel, core.Options{Epsilon: *eps, Seed: *seed, IdentitySampler: *identity, Workers: *workers, Obs: reg})
	if err != nil {
		return err
	}
	var text string
	if *asJSON {
		data, err := dsl.MarshalJSON(res.Program, rel)
		if err != nil {
			return err
		}
		text = string(data)
	} else {
		text = dsl.Format(res.Program, rel)
	}
	if *out == "" {
		fmt.Println(text)
	} else if err := os.WriteFile(*out, []byte(text+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "synthesized %d statements (coverage %.3f, %d DAGs in MEC, %d candidates pruned by verifier, %s total)\n",
		len(res.Program.Stmts), res.Coverage, res.NumDAGs, res.PrunedPrograms, res.TotalTime().Round(1000))
	if summary := reg.StageSummary(); summary != "" {
		fmt.Fprint(os.Stderr, summary)
	}
	return finish()
}

// cmdLint runs the semantic verifier over a constraint file — the offline
// counterpart of the pruning gate inside the synthesizer. Findings print on
// stdout; error-severity findings (or any finding under -strict) make the
// command exit nonzero.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	in := fs.String("in", "", "CSV the program applies to (required)")
	prog := fs.String("prog", "", "constraint file to lint (required)")
	strict := fs.Bool("strict", false, "treat warnings as errors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *prog == "" {
		return fmt.Errorf("lint: -in and -prog are required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*prog)
	if err != nil {
		return err
	}
	// Snapshot dictionary sizes: Parse interns unseen literals, so growth
	// means the program mentions values that never occur in the dataset —
	// the CLI-level form of a domain violation.
	before := make([]int, rel.NumAttrs())
	for a := range before {
		before[a] = rel.Cardinality(a)
	}
	program, err := dsl.Parse(string(src), rel)
	if err != nil {
		return err
	}
	findings := verify.Program(program, rel)
	errors, warnings := 0, 0
	for a := range before {
		if grown := rel.Cardinality(a) - before[a]; grown > 0 {
			fmt.Printf("%s: warning [domain-violation]: %d literal(s) of %s never occur in %s\n",
				*prog, grown, rel.Attr(a), *in)
			warnings++
		}
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", *prog, f)
		if f.Severity == verify.Error {
			errors++
		} else {
			warnings++
		}
	}
	if errors > 0 || (*strict && warnings > 0) {
		return fmt.Errorf("lint: %d errors, %d warnings in %s", errors, warnings, *prog)
	}
	fmt.Printf("%s: %d statements verified clean (%d warnings)\n", *prog, len(program.Stmts), warnings)
	return nil
}

func cmdCheck(args []string, rectify bool) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	in := fs.String("in", "", "CSV to validate (required)")
	prog := fs.String("prog", "", "constraint file from `guardrail synth` (required)")
	out := fs.String("out", "", "rectified CSV output (rectify only)")
	strategy := fs.String("strategy", "ignore", "raise|ignore|coerce|rectify")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *prog == "" {
		return fmt.Errorf("-in and -prog are required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*prog)
	if err != nil {
		return err
	}
	program, err := dsl.Parse(string(src), rel)
	if err != nil {
		return err
	}
	strat := core.Ignore
	if rectify {
		strat = core.Rectify
	} else if s, err := core.ParseStrategy(*strategy); err == nil {
		strat = s
	} else {
		return err
	}
	command := "check"
	if rectify {
		command = "rectify"
	}
	reg, finish, err := of.start(command)
	if err != nil {
		return err
	}
	rep, err := core.NewGuard(program, strat).Instrument(reg).Apply(rel)
	if err != nil {
		return err
	}
	fmt.Printf("checked %d rows: %d flagged, %d cells changed (strategy %s)\n",
		rep.RowsChecked, rep.RowsFlagged, rep.CellsChanged, strat)
	for i, fl := range rep.Flagged {
		if fl {
			fmt.Printf("  row %d violates constraints\n", i)
		}
	}
	if rectify && *out != "" {
		if err := writeCSV(rel, *out); err != nil {
			return err
		}
		fmt.Printf("wrote rectified data to %s\n", *out)
	}
	return finish()
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "", "CSV the program was synthesized from (required)")
	prog := fs.String("prog", "", "constraint file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *prog == "" {
		return fmt.Errorf("analyze: -in and -prog are required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*prog)
	if err != nil {
		return err
	}
	program, err := dsl.Parse(string(src), rel)
	if err != nil {
		return err
	}
	simplified := dsl.Simplify(program)
	st := dsl.Analyze(simplified)
	fmt.Printf("statements: %d (after simplification: %d)\n", len(program.Stmts), len(simplified.Stmts))
	fmt.Printf("branches:   %d\n", st.Branches)
	fmt.Printf("coverage:   %.3f\n", dsl.Coverage(simplified, rel))
	fmt.Printf("loss:       %d rows\n", dsl.Loss(simplified, rel))
	fmt.Print("governed attributes:")
	for _, a := range st.GovernedAttrs {
		fmt.Printf(" %s", rel.Attr(a))
	}
	fmt.Print("\ndeterminant attributes:")
	for _, a := range st.DeterminantAttrs {
		fmt.Printf(" %s", rel.Attr(a))
	}
	fmt.Println()
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	in := fs.String("in", "", "CSV to summarize (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("show: -in is required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d rows, %d attributes\n", *in, rel.NumRows(), rel.NumAttrs())
	for a := 0; a < rel.NumAttrs(); a++ {
		fmt.Printf("  %-24s cardinality %d\n", rel.Attr(a), rel.Cardinality(a))
	}
	return nil
}
