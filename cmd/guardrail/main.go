// Command guardrail synthesizes integrity constraints from CSV data and
// enforces them, exposing the paper's full offline/online workflow:
//
//	guardrail gen     -dataset 2 -scale 0.1 -out data.csv
//	guardrail synth   -in data.csv -eps 0.02 -out constraints.gr
//	guardrail resynth -in stream.csv -window 500 -json
//	guardrail check   -in dirty.csv -prog constraints.gr
//	guardrail rectify -in dirty.csv -prog constraints.gr -out clean.csv
//	guardrail show    -in data.csv
//	guardrail analyze -in data.csv -prog constraints.gr
//	guardrail lint    -in data.csv -prog constraints.gr
//	guardrail serve   -addr :8080 -load mydata=data.csv,constraints.gr
//
// The static-analysis verbs `lint` and `analyze` use documented exit
// codes so CI lanes can distinguish outcomes: 0 means the program is
// clean, 1 means the verb reported findings, 2 means the invocation
// itself failed (bad flags, unreadable files, parse errors). Both accept
// -json for machine-readable findings. Other verbs exit 1 on any error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/analysis"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
	"github.com/guardrail-db/guardrail/internal/dsl/verify"
	"github.com/guardrail-db/guardrail/internal/errgen"
)

// exitCode carries the documented process exit status for the
// static-analysis verbs: 1 for findings, 2 for usage/IO failures. Errors
// without one exit 1.
type exitCode struct {
	code int
	err  error
}

func (e exitCode) Error() string { return e.err.Error() }
func (e exitCode) Unwrap() error { return e.err }

// findings wraps a findings summary with exit status 1.
func findingsErr(format string, args ...any) error {
	return exitCode{code: 1, err: fmt.Errorf(format, args...)}
}

// usageErr wraps a usage or I/O failure with exit status 2.
func usageErr(err error) error {
	if err == nil {
		return nil
	}
	return exitCode{code: 2, err: err}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "guardrail:", err)
		var ec exitCode
		if errors.As(err, &ec) {
			os.Exit(ec.code)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usageErr(fmt.Errorf("usage: guardrail <gen|synth|resynth|check|rectify|show|analyze|lint|serve> [flags]"))
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "synth":
		return cmdSynth(args[1:])
	case "resynth":
		return cmdResynth(args[1:])
	case "check":
		return cmdCheck(args[1:], false)
	case "rectify":
		return cmdCheck(args[1:], true)
	case "show":
		return cmdShow(args[1:])
	case "analyze":
		return cmdAnalyze(args[1:])
	case "lint":
		return cmdLint(args[1:])
	case "serve":
		return cmdServe(args[1:])
	default:
		return usageErr(fmt.Errorf("unknown subcommand %q", args[0]))
	}
}

// jsonFinding is the shared machine-readable findings shape of `lint
// -json` and `analyze -json`.
type jsonFinding struct {
	Class    string `json:"class"`
	Severity string `json:"severity"`
	Stmt     int    `json:"stmt"`
	Branch   int    `json:"branch"`
	Other    int    `json:"other"`
	Message  string `json:"message"`
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func loadCSV(path string) (*dataset.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Read side: a Close error after a successful read carries no data.
	defer func() { _ = f.Close() }()
	return dataset.FromCSV(f, path)
}

func writeCSV(rel *dataset.Relation, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Write side: Close is where buffered bytes hit the disk, so its
	// error is the write failing — surface it unless ToCSV already did.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return rel.ToCSV(f)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	id := fs.Int("dataset", 2, "Table 2 dataset id (1-12)")
	network := fs.String("network", "", "named network instead of -dataset: postal (the Example 3.1 PostalCode->City->State->Country chain)")
	rows := fs.Int("rows", 3000, "row count for -network sampling")
	codes := fs.Int("postal-codes", 6, "postal-code cardinality of -network postal")
	scale := fs.Float64("scale", 0.1, "row-count scale in (0,1] for -dataset")
	seed := fs.Int64("seed", 1, "sampling seed")
	out := fs.String("out", "data.csv", "output CSV path")
	corruptCols := fs.String("corrupt-cols", "", "comma-separated attribute names to corrupt via errgen (empty: no corruption)")
	corruptRate := fs.Float64("corrupt-rate", 0.05, "fraction of rows to corrupt when -corrupt-cols is set")
	corruptRandom := fs.Float64("corrupt-random", 1.0, "probability a corrupted cell gets a fresh out-of-domain string")
	corruptSeed := fs.Int64("corrupt-seed", 1, "corruption seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var rel *dataset.Relation
	var name string
	switch *network {
	case "":
		spec, err := bn.SpecByID(*id)
		if err != nil {
			return err
		}
		name = spec.Name
		if rel, err = spec.Generate(*scale, *seed); err != nil {
			return err
		}
	case "postal":
		name = "postal"
		var err error
		if rel, err = bn.PostalChain(*codes).Sample(*rows, *seed); err != nil {
			return err
		}
	default:
		return fmt.Errorf("gen: unknown -network %q (want postal)", *network)
	}
	if *corruptCols != "" {
		var cols []int
		for _, c := range strings.Split(*corruptCols, ",") {
			idx := rel.AttrIndex(strings.TrimSpace(c))
			if idx < 0 {
				return fmt.Errorf("gen: -corrupt-cols names unknown attribute %q", c)
			}
			cols = append(cols, idx)
		}
		mask, err := errgen.Inject(rel, errgen.Options{
			Rate:             *corruptRate,
			RandomStringProb: *corruptRandom,
			Columns:          cols,
			Seed:             *corruptSeed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "corrupted %d cells in %s\n", len(mask.Cells), *corruptCols)
	}
	if err := writeCSV(rel, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows x %d attrs of %q to %s\n", rel.NumRows(), rel.NumAttrs(), name, *out)
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	in := fs.String("in", "", "training CSV (required)")
	out := fs.String("out", "", "output constraint file (default: stdout)")
	eps := fs.Float64("eps", 0.02, "epsilon-validity threshold")
	seed := fs.Int64("seed", 1, "sampling seed")
	identity := fs.Bool("identity-sampler", false, "disable the auxiliary-distribution sampler")
	asJSON := fs.Bool("json", false, "emit the program as JSON instead of the surface syntax")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker-pool size; 1 forces the serial pipeline")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("synth: -in is required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	reg, tr, finish, err := of.start("synth", *workers)
	if err != nil {
		return err
	}
	res, err := core.Synthesize(rel, core.Options{Epsilon: *eps, Seed: *seed, IdentitySampler: *identity, Workers: *workers, Obs: reg, Trace: tr.Root()})
	if err != nil {
		return err
	}
	var text string
	if *asJSON {
		data, err := dsl.MarshalJSON(res.Program, rel)
		if err != nil {
			return err
		}
		text = string(data)
	} else {
		text = dsl.Format(res.Program, rel)
	}
	if *out == "" {
		fmt.Println(text)
	} else if err := os.WriteFile(*out, []byte(text+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "synthesized %d statements (coverage %.3f, %d DAGs in MEC, %d candidates pruned by verifier, %s total)\n",
		len(res.Program.Stmts), res.Coverage, res.NumDAGs, res.PrunedPrograms, res.TotalTime().Round(1000))
	if summary := reg.StageSummary(); summary != "" {
		fmt.Fprint(os.Stderr, summary)
	}
	return finish()
}

// cmdLint runs the semantic verifier over a constraint file — the offline
// counterpart of the pruning gate inside the synthesizer. Findings print
// on stdout (or as one JSON document under -json). Exit status: 0 clean,
// 1 error-severity findings (any finding under -strict), 2 usage or I/O
// failure.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	in := fs.String("in", "", "CSV the program applies to (required)")
	prog := fs.String("prog", "", "constraint file to lint (required)")
	strict := fs.Bool("strict", false, "treat warnings as errors")
	asJSON := fs.Bool("json", false, "emit findings as one JSON document")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	if *in == "" || *prog == "" {
		return usageErr(fmt.Errorf("lint: -in and -prog are required"))
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return usageErr(err)
	}
	src, err := os.ReadFile(*prog)
	if err != nil {
		return usageErr(err)
	}
	// Snapshot dictionary sizes: Parse interns unseen literals, so growth
	// means the program mentions values that never occur in the dataset —
	// the CLI-level form of a domain violation.
	before := make([]int, rel.NumAttrs())
	for a := range before {
		before[a] = rel.Cardinality(a)
	}
	program, err := dsl.Parse(string(src), rel)
	if err != nil {
		return usageErr(err)
	}
	var all []jsonFinding
	nErrors, nWarnings := 0, 0
	for a := range before {
		if grown := rel.Cardinality(a) - before[a]; grown > 0 {
			all = append(all, jsonFinding{
				Class: "domain-violation", Severity: "warning", Stmt: -1, Branch: -1, Other: -1,
				Message: fmt.Sprintf("%d literal(s) of %s never occur in %s", grown, rel.Attr(a), *in),
			})
			nWarnings++
		}
	}
	for _, f := range verify.Program(program, rel) {
		all = append(all, jsonFinding{
			Class: f.Class.String(), Severity: f.Severity.String(),
			Stmt: f.Stmt, Branch: f.Branch, Other: f.Other, Message: f.Message,
		})
		if f.Severity == verify.Error {
			nErrors++
		} else {
			nWarnings++
		}
	}
	if *asJSON {
		doc := struct {
			File     string        `json:"file"`
			Findings []jsonFinding `json:"findings"`
			Errors   int           `json:"errors"`
			Warnings int           `json:"warnings"`
		}{*prog, all, nErrors, nWarnings}
		if doc.Findings == nil {
			doc.Findings = []jsonFinding{}
		}
		if err := printJSON(doc); err != nil {
			return usageErr(err)
		}
	} else {
		for _, f := range all {
			if f.Stmt < 0 {
				fmt.Printf("%s: %s [%s]: %s\n", *prog, f.Severity, f.Class, f.Message)
				continue
			}
			loc := fmt.Sprintf("stmt %d", f.Stmt)
			if f.Branch >= 0 {
				loc += fmt.Sprintf(" branch %d", f.Branch)
			}
			fmt.Printf("%s: %s %s [%s]: %s\n", *prog, f.Severity, loc, f.Class, f.Message)
		}
	}
	if nErrors > 0 || (*strict && nWarnings > 0) {
		return findingsErr("lint: %d errors, %d warnings in %s", nErrors, nWarnings, *prog)
	}
	if !*asJSON {
		fmt.Printf("%s: %d statements verified clean (%d warnings)\n", *prog, len(program.Stmts), nWarnings)
	}
	return nil
}

func cmdCheck(args []string, rectify bool) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	in := fs.String("in", "", "CSV to validate (required)")
	prog := fs.String("prog", "", "constraint file from `guardrail synth` (required)")
	out := fs.String("out", "", "rectified CSV output (rectify only)")
	strategy := fs.String("strategy", "ignore", "raise|ignore|coerce|rectify")
	engine := fs.String("engine", "compiled", "row-check engine: ast|compiled (compiled falls back to ast when translation validation fails)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *prog == "" {
		return fmt.Errorf("-in and -prog are required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*prog)
	if err != nil {
		return err
	}
	program, err := dsl.Parse(string(src), rel)
	if err != nil {
		return err
	}
	strat := core.Ignore
	if rectify {
		strat = core.Rectify
	} else if s, err := core.ParseStrategy(*strategy); err == nil {
		strat = s
	} else {
		return err
	}
	command := "check"
	if rectify {
		command = "rectify"
	}
	eng, err := core.ParseEngine(*engine)
	if err != nil {
		return err
	}
	reg, tr, finish, err := of.start(command, 1)
	if err != nil {
		return err
	}
	guard := core.NewGuard(program, strat).Instrument(reg).WithTrace(tr.Root(), 0)
	if eng == core.EngineCompiled {
		// Compile over the open universe — sound even for CSV values the
		// training data never produced. A failed translation validation is
		// not fatal: the AST interpreter computes the same reports.
		if val, cerr := guard.Compile(compile.Options{Obs: reg, Trace: tr.Root()}); cerr != nil {
			fmt.Fprintf(os.Stderr, "engine: ast (compiled unavailable: %v)\n", cerr)
		} else {
			fmt.Fprintln(os.Stderr, "engine: compiled")
			fmt.Fprintln(os.Stderr, val.Summary())
		}
	} else {
		fmt.Fprintln(os.Stderr, "engine: ast")
	}
	rep, err := guard.Apply(rel)
	if err != nil {
		return err
	}
	fmt.Printf("checked %d rows: %d flagged, %d cells changed (strategy %s)\n",
		rep.RowsChecked, rep.RowsFlagged, rep.CellsChanged, strat)
	for i, fl := range rep.Flagged {
		if fl {
			fmt.Printf("  row %d violates constraints\n", i)
		}
	}
	if rectify && *out != "" {
		if err := writeCSV(rel, *out); err != nil {
			return err
		}
		fmt.Printf("wrote rectified data to %s\n", *out)
	}
	return finish()
}

// cmdAnalyze runs the semantic analysis passes (internal/dsl/analysis)
// over a constraint file: dead branches, exhaustive guards, statement
// subsumption, cross-statement contradictions, the program's semantic
// fingerprint, and what minimization could remove. Exit status: 0 clean,
// 1 error-severity findings (any warning-or-worse finding under
// -strict), 2 usage or I/O failure.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "", "CSV the program was synthesized from (required)")
	prog := fs.String("prog", "", "constraint file (required)")
	strict := fs.Bool("strict", false, "treat warnings as errors")
	asJSON := fs.Bool("json", false, "emit the report as one JSON document")
	if err := fs.Parse(args); err != nil {
		return usageErr(err)
	}
	if *in == "" || *prog == "" {
		return usageErr(fmt.Errorf("analyze: -in and -prog are required"))
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return usageErr(err)
	}
	src, err := os.ReadFile(*prog)
	if err != nil {
		return usageErr(err)
	}
	program, err := dsl.Parse(string(src), rel)
	if err != nil {
		return usageErr(err)
	}
	rpt := analysis.Program(program, rel)
	st := dsl.Analyze(program)
	nErrors, nWarnings := 0, 0
	for _, f := range rpt.Findings {
		switch f.Severity {
		case analysis.Error:
			nErrors++
		case analysis.Warning:
			nWarnings++
		}
	}
	if *asJSON {
		doc := struct {
			File            string        `json:"file"`
			Findings        []jsonFinding `json:"findings"`
			Errors          int           `json:"errors"`
			Warnings        int           `json:"warnings"`
			Statements      int           `json:"statements"`
			Branches        int           `json:"branches"`
			Coverage        float64       `json:"coverage"`
			Fingerprint     string        `json:"fingerprint"`
			SolverCalls     int64         `json:"solver_calls"`
			BranchesRemoved int           `json:"branches_removable"`
			StmtsRemoved    int           `json:"stmts_removable"`
			MinimizeProved  bool          `json:"minimize_proved"`
		}{
			File: *prog, Findings: []jsonFinding{}, Errors: nErrors, Warnings: nWarnings,
			Statements: len(program.Stmts), Branches: st.Branches,
			Coverage:    dsl.Coverage(program, rel),
			Fingerprint: fmt.Sprintf("%016x", rpt.Fingerprint), SolverCalls: rpt.SolverCalls,
			BranchesRemoved: rpt.BranchesRemoved, StmtsRemoved: rpt.StmtsRemoved,
			MinimizeProved: rpt.MinimizeProved,
		}
		for _, f := range rpt.Findings {
			doc.Findings = append(doc.Findings, jsonFinding{
				Class: f.Class.String(), Severity: f.Severity.String(),
				Stmt: f.Stmt, Branch: f.Branch, Other: f.Other, Message: f.Message,
			})
		}
		if err := printJSON(doc); err != nil {
			return usageErr(err)
		}
	} else {
		fmt.Printf("%s: %d statements, %d branches, coverage %.3f, fingerprint %016x\n",
			*prog, len(program.Stmts), st.Branches, dsl.Coverage(program, rel), rpt.Fingerprint)
		for _, f := range rpt.Findings {
			fmt.Printf("%s: %s\n", *prog, f)
		}
		if rpt.BranchesRemoved > 0 || rpt.StmtsRemoved > 0 {
			proof := "proved equivalent"
			if !rpt.MinimizeProved {
				proof = "NOT proved equivalent"
			}
			fmt.Printf("%s: minimization removes %d branch(es), %d statement(s) (%s)\n",
				*prog, rpt.BranchesRemoved, rpt.StmtsRemoved, proof)
		}
		fmt.Printf("%s: %d findings (%d errors, %d warnings), %d solver calls\n",
			*prog, len(rpt.Findings), nErrors, nWarnings, rpt.SolverCalls)
	}
	if nErrors > 0 || (*strict && nWarnings > 0) {
		return findingsErr("analyze: %d errors, %d warnings in %s", nErrors, nWarnings, *prog)
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	in := fs.String("in", "", "CSV to summarize (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("show: -in is required")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d rows, %d attributes\n", *in, rel.NumRows(), rel.NumAttrs())
	for a := 0; a < rel.NumAttrs(); a++ {
		fmt.Printf("  %-24s cardinality %d\n", rel.Attr(a), rel.Cardinality(a))
	}
	return nil
}
