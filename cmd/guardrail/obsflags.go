package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/debug"
)

// obsFlags carries the observability flags shared by the pipeline
// subcommands: -report writes the JSON run-report, -debug-addr serves
// live expvar metrics and pprof profiles while the command runs.
type obsFlags struct {
	report    *string
	debugAddr *string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		report:    fs.String("report", "", "write a JSON run-report (counters + stage timings) to this path"),
		debugAddr: fs.String("debug-addr", "", "serve live expvar metrics and pprof on this address (e.g. localhost:6060)"),
	}
}

// start builds the metrics registry and, when -debug-addr is set, the
// debug HTTP server. The returned finish func must run after the command's
// work: it stops the server and writes the -report file.
func (o *obsFlags) start(command string) (*obs.Registry, func() error, error) {
	reg := obs.New()
	var srv *debug.Server
	if *o.debugAddr != "" {
		s, err := debug.Serve(*o.debugAddr, reg)
		if err != nil {
			return nil, nil, err
		}
		srv = s
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s/debug/vars\n", srv.Addr)
	}
	finish := func() error {
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "guardrail: closing debug server:", err)
			}
		}
		if *o.report != "" {
			return obs.WriteReport(*o.report, command, reg)
		}
		return nil
	}
	return reg, finish, nil
}
