package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/debug"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// obsFlags carries the observability flags shared by the pipeline
// subcommands: -report writes the JSON run-report, -debug-addr serves
// live expvar metrics, Prometheus /metrics and pprof profiles while the
// command runs, and -trace records a hierarchical span tree and exports
// it as a Chrome trace-event file (loadable in Perfetto / chrome://tracing).
type obsFlags struct {
	report    *string
	debugAddr *string
	trace     *string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		report:    fs.String("report", "", "write a JSON run-report (counters + stage timings) to this path"),
		debugAddr: fs.String("debug-addr", "", "serve live expvar metrics, Prometheus /metrics and pprof on this address (e.g. localhost:6060)"),
		trace:     fs.String("trace", "", "write a Chrome trace-event JSON file (Perfetto-loadable) to this path"),
	}
}

// start builds the metrics registry, the tracer (nil unless -trace is
// set; workers sizes its per-worker lanes), and, when -debug-addr is
// set, the debug HTTP server. The returned finish func must run after
// the command's work: it stops the server, exports the trace, prints the
// critical path, and writes the -report file.
func (o *obsFlags) start(command string, workers int) (*obs.Registry, *trace.Tracer, func() error, error) {
	reg := obs.New()
	var tr *trace.Tracer
	if *o.trace != "" {
		if workers < 1 {
			workers = 1
		}
		tr = trace.New(workers)
	}
	var srv *debug.Server
	if *o.debugAddr != "" {
		s, err := debug.Serve(*o.debugAddr, reg)
		if err != nil {
			return nil, nil, nil, err
		}
		srv = s
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s/debug/vars (metrics on /metrics)\n", srv.Addr)
	}
	finish := func() error {
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "guardrail: closing debug server:", err)
			}
		}
		if tr != nil {
			f, err := os.Create(*o.trace)
			if err != nil {
				return err
			}
			werr := tr.WriteChrome(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n", *o.trace)
			if path := tr.CriticalPath(); len(path) > 0 {
				fmt.Fprint(os.Stderr, trace.FormatCriticalPath(path))
			}
		}
		if *o.report != "" {
			return obs.WriteReportWithTrace(*o.report, command, reg, tr)
		}
		return nil
	}
	return reg, tr, finish, nil
}
