package main

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/obs"
)

// TestEndToEndWorkflow drives the CLI through the full gen → synth →
// check → rectify → analyze workflow on a temp directory.
func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	prog := filepath.Join(dir, "constraints.gr")
	fixed := filepath.Join(dir, "clean.csv")

	if err := run([]string{"gen", "-dataset", "2", "-scale", "0.05", "-seed", "1", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := run([]string{"synth", "-in", data, "-eps", "0.02", "-out", prog}); err != nil {
		t.Fatalf("synth: %v", err)
	}
	src, err := os.ReadFile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "GIVEN") {
		t.Fatalf("constraint file has no GIVEN clause:\n%s", src)
	}
	if err := run([]string{"check", "-in", data, "-prog", prog}); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := run([]string{"rectify", "-in", data, "-prog", prog, "-out", fixed}); err != nil {
		t.Fatalf("rectify: %v", err)
	}
	if _, err := os.Stat(fixed); err != nil {
		t.Fatalf("rectified output missing: %v", err)
	}
	if err := run([]string{"show", "-in", data}); err != nil {
		t.Fatalf("show: %v", err)
	}
	if err := run([]string{"analyze", "-in", data, "-prog", prog}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	// A freshly synthesized program must lint clean: the synthesizer's
	// verification gate prunes anything the linter would reject.
	if err := run([]string{"lint", "-in", data, "-prog", prog}); err != nil {
		t.Fatalf("lint on synthesized program: %v", err)
	}
}

// TestLintDegenerateProgram checks the lint subcommand's failure path: a
// constraint file with a contradictory branch pair must exit nonzero with
// findings on stdout.
func TestLintDegenerateProgram(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(data, []byte("a,b\n0,0\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := filepath.Join(dir, "bad.gr")
	src := `GIVEN a ON b HAVING
  IF a = "0" THEN b <- "0";
  IF a = "0" THEN b <- "1";
`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() {
		if err := run([]string{"lint", "-in", data, "-prog", prog}); err == nil {
			t.Error("lint accepted a contradictory program")
		}
	})
	if !strings.Contains(out, "contradiction") {
		t.Fatalf("lint output missing contradiction finding:\n%s", out)
	}
}

// TestLintStrictPromotesWarnings: a duplicate branch is only a warning, so
// plain lint passes and -strict fails.
func TestLintStrictPromotesWarnings(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(data, []byte("a,b\n0,0\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := filepath.Join(dir, "dup.gr")
	src := `GIVEN a ON b HAVING
  IF a = "0" THEN b <- "0";
  IF a = "0" THEN b <- "0";
`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"lint", "-in", data, "-prog", prog}); err != nil {
		t.Fatalf("warning-only program failed plain lint: %v", err)
	}
	if err := run([]string{"lint", "-in", data, "-prog", prog, "-strict"}); err == nil {
		t.Fatal("strict lint accepted a program with warnings")
	}
}

func TestLintErrors(t *testing.T) {
	if err := run([]string{"lint"}); err == nil {
		t.Fatal("lint without flags accepted")
	}
	if err := run([]string{"lint", "-in", "/nonexistent", "-prog", "/nonexistent"}); err == nil {
		t.Fatal("lint with missing files accepted")
	}
}

// codeOf extracts the documented exit status from an error: 0 for nil, the
// wrapped code when present, 1 otherwise.
func codeOf(err error) int {
	if err == nil {
		return 0
	}
	var ec exitCode
	if errors.As(err, &ec) {
		return ec.code
	}
	return 1
}

// writeLintFixture writes a two-column CSV and a constraint file, returning
// their paths.
func writeLintFixture(t *testing.T, src string) (data, prog string) {
	t.Helper()
	dir := t.TempDir()
	data = filepath.Join(dir, "data.csv")
	prog = filepath.Join(dir, "prog.gr")
	if err := os.WriteFile(data, []byte("a,b\n0,0\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return data, prog
}

// TestExitCodes pins the documented statuses of the static-analysis verbs:
// 0 clean, 1 findings, 2 usage/IO failure.
func TestExitCodes(t *testing.T) {
	clean := "GIVEN a ON b HAVING\n  IF a = \"0\" THEN b <- \"0\";\n"
	contradictory := "GIVEN a ON b HAVING\n  IF a = \"0\" THEN b <- \"0\";\n  IF a = \"0\" THEN b <- \"1\";\n"
	crossContradiction := "GIVEN a ON b HAVING\n  IF a = \"0\" THEN b <- \"0\";\nGIVEN a ON b HAVING\n  IF a = \"0\" THEN b <- \"1\";\n"

	data, prog := writeLintFixture(t, clean)
	captureStdout(t, func() {
		for _, tc := range []struct {
			name string
			args []string
			want int
		}{
			{"lint clean", []string{"lint", "-in", data, "-prog", prog}, 0},
			{"analyze clean", []string{"analyze", "-in", data, "-prog", prog}, 0},
			{"lint missing file", []string{"lint", "-in", data, "-prog", "/nonexistent"}, 2},
			{"analyze missing file", []string{"analyze", "-in", data, "-prog", "/nonexistent"}, 2},
			{"lint missing flags", []string{"lint"}, 2},
			{"analyze missing flags", []string{"analyze"}, 2},
			{"unknown verb", []string{"frobnicate"}, 2},
		} {
			if got := codeOf(run(tc.args)); got != tc.want {
				t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
			}
		}
	})

	dataBad, progBad := writeLintFixture(t, contradictory)
	dataCross, progCross := writeLintFixture(t, crossContradiction)
	captureStdout(t, func() {
		if got := codeOf(run([]string{"lint", "-in", dataBad, "-prog", progBad})); got != 1 {
			t.Errorf("lint with findings: exit code %d, want 1", got)
		}
		if got := codeOf(run([]string{"analyze", "-in", dataCross, "-prog", progCross})); got != 1 {
			t.Errorf("analyze with error findings: exit code %d, want 1", got)
		}
		// A shadowed branch is only a warning for analyze: clean exit
		// unless -strict.
		if got := codeOf(run([]string{"analyze", "-in", dataBad, "-prog", progBad, "-strict"})); got != 1 {
			t.Errorf("analyze -strict with warnings: exit code %d, want 1", got)
		}
	})
}

// TestLintJSON: -json emits one document with the findings and totals.
func TestLintJSON(t *testing.T) {
	data, prog := writeLintFixture(t,
		"GIVEN a ON b HAVING\n  IF a = \"0\" THEN b <- \"0\";\n  IF a = \"0\" THEN b <- \"1\";\n")
	out := captureStdout(t, func() {
		if codeOf(run([]string{"lint", "-in", data, "-prog", prog, "-json"})) != 1 {
			t.Error("lint -json with findings should still exit 1")
		}
	})
	var doc struct {
		File     string `json:"file"`
		Findings []struct {
			Class    string `json:"class"`
			Severity string `json:"severity"`
			Stmt     int    `json:"stmt"`
		} `json:"findings"`
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("lint -json output is not JSON: %v\n%s", err, out)
	}
	if doc.Errors == 0 || len(doc.Findings) == 0 {
		t.Fatalf("lint -json missed the contradiction: %+v", doc)
	}
	if doc.Findings[0].Class != "contradiction" || doc.Findings[0].Severity != "error" {
		t.Errorf("unexpected first finding: %+v", doc.Findings[0])
	}
}

// TestAnalyzeJSON: the analyze report carries findings, the semantic
// fingerprint, and the minimization summary.
func TestAnalyzeJSON(t *testing.T) {
	data, prog := writeLintFixture(t,
		"GIVEN a ON b HAVING\n  IF a = \"0\" THEN b <- \"0\";\n  IF a = \"0\" THEN b <- \"1\";\n")
	out := captureStdout(t, func() {
		if codeOf(run([]string{"analyze", "-in", data, "-prog", prog, "-json"})) != 0 {
			t.Error("shadowed branch is warning-severity; analyze -json should exit 0")
		}
	})
	var doc struct {
		Findings []struct {
			Class string `json:"class"`
		} `json:"findings"`
		Warnings        int    `json:"warnings"`
		Fingerprint     string `json:"fingerprint"`
		SolverCalls     int64  `json:"solver_calls"`
		BranchesRemoved int    `json:"branches_removable"`
		MinimizeProved  bool   `json:"minimize_proved"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("analyze -json output is not JSON: %v\n%s", err, out)
	}
	if doc.Warnings == 0 || len(doc.Findings) == 0 || doc.Findings[0].Class != "dead-branch" {
		t.Fatalf("analyze -json missed the dead branch: %+v", doc)
	}
	if len(doc.Fingerprint) != 16 || doc.SolverCalls == 0 {
		t.Errorf("missing fingerprint/solver accounting: %+v", doc)
	}
	if doc.BranchesRemoved != 1 || !doc.MinimizeProved {
		t.Errorf("minimization summary wrong: %+v", doc)
	}
}
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSynthJSONOutput(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	prog := filepath.Join(dir, "constraints.json")
	if err := run([]string{"gen", "-dataset", "6", "-scale", "0.05", "-out", data}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"synth", "-in", data, "-json", "-out", prog}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), `"statements"`) {
		t.Fatalf("not JSON:\n%s", src)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"synth"},                        // missing -in
		{"check", "-in", "x.csv"},        // missing -prog
		{"show"},                         // missing -in
		{"analyze", "-in", "nope.csv"},   // missing -prog
		{"gen", "-dataset", "99"},        // unknown dataset
		{"synth", "-in", "/nonexistent"}, // unreadable input
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("no error for %v", args)
		}
	}
}

// TestSynthReportDeterministicAcrossWorkers exercises the -report flag end
// to end: the counter section of the run-report must be byte-identical at
// -workers 1 and -workers 8 on the same seed, and the stage section must
// carry the three synthesis stages. Stage timings are wall-clock, so only
// names are compared.
func TestSynthReportDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	if err := run([]string{"gen", "-dataset", "6", "-scale", "0.05", "-out", data}); err != nil {
		t.Fatal(err)
	}
	load := func(workers string) obs.RunReport {
		report := filepath.Join(dir, "report-w"+workers+".json")
		if err := run([]string{"synth", "-in", data, "-seed", "7", "-workers", workers, "-report", report}); err != nil {
			t.Fatalf("synth -workers %s: %v", workers, err)
		}
		raw, err := os.ReadFile(report)
		if err != nil {
			t.Fatal(err)
		}
		var rep obs.RunReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("report -workers %s is not valid JSON: %v", workers, err)
		}
		return rep
	}
	serial := load("1")
	parallel := load("8")
	if serial.Command != "synth" {
		t.Errorf("report command = %q, want synth", serial.Command)
	}
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		t.Errorf("counters differ across worker counts:\nw1: %v\nw8: %v", serial.Counters, parallel.Counters)
	}
	stages := make(map[string]bool)
	for _, s := range serial.Stages {
		stages[s.Name] = true
	}
	for _, want := range []string{"synth.learn", "synth.enum", "synth.fill"} {
		if !stages[want] {
			t.Errorf("report missing stage %q (have %v)", want, serial.Stages)
		}
	}
	for _, key := range []string{"pc.ci_tests", "synth.dags", "aux.samples"} {
		if serial.Counters[key] == 0 {
			t.Errorf("counter %q is zero in run-report: %v", key, serial.Counters)
		}
	}
}

// TestCheckReport: the check subcommand's run-report carries the guard
// counters that mirror the printed Report.
func TestCheckReport(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	prog := filepath.Join(dir, "constraints.gr")
	report := filepath.Join(dir, "check.json")
	if err := run([]string{"gen", "-dataset", "2", "-scale", "0.05", "-out", data}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"synth", "-in", data, "-out", prog}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-in", data, "-prog", prog, "-report", report}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Command != "check" {
		t.Errorf("report command = %q, want check", rep.Command)
	}
	if rep.Counters["guard.ignore.rows_checked"] == 0 {
		t.Errorf("guard.ignore.rows_checked missing from report: %v", rep.Counters)
	}
}

func TestCheckRaiseStrategy(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	prog := filepath.Join(dir, "constraints.gr")
	if err := run([]string{"gen", "-dataset", "2", "-scale", "0.05", "-out", data}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"synth", "-in", data, "-out", prog}); err != nil {
		t.Fatal(err)
	}
	// Clean data passes even under raise.
	if err := run([]string{"check", "-in", data, "-prog", prog, "-strategy", "raise"}); err != nil {
		t.Fatalf("raise on clean data: %v", err)
	}
	if err := run([]string{"check", "-in", data, "-prog", prog, "-strategy", "explode"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
