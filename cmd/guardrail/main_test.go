package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEndWorkflow drives the CLI through the full gen → synth →
// check → rectify → analyze workflow on a temp directory.
func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	prog := filepath.Join(dir, "constraints.gr")
	fixed := filepath.Join(dir, "clean.csv")

	if err := run([]string{"gen", "-dataset", "2", "-scale", "0.05", "-seed", "1", "-out", data}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := run([]string{"synth", "-in", data, "-eps", "0.02", "-out", prog}); err != nil {
		t.Fatalf("synth: %v", err)
	}
	src, err := os.ReadFile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "GIVEN") {
		t.Fatalf("constraint file has no GIVEN clause:\n%s", src)
	}
	if err := run([]string{"check", "-in", data, "-prog", prog}); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := run([]string{"rectify", "-in", data, "-prog", prog, "-out", fixed}); err != nil {
		t.Fatalf("rectify: %v", err)
	}
	if _, err := os.Stat(fixed); err != nil {
		t.Fatalf("rectified output missing: %v", err)
	}
	if err := run([]string{"show", "-in", data}); err != nil {
		t.Fatalf("show: %v", err)
	}
	if err := run([]string{"analyze", "-in", data, "-prog", prog}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
}

func TestSynthJSONOutput(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	prog := filepath.Join(dir, "constraints.json")
	if err := run([]string{"gen", "-dataset", "6", "-scale", "0.05", "-out", data}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"synth", "-in", data, "-json", "-out", prog}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), `"statements"`) {
		t.Fatalf("not JSON:\n%s", src)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"synth"},                        // missing -in
		{"check", "-in", "x.csv"},        // missing -prog
		{"show"},                         // missing -in
		{"analyze", "-in", "nope.csv"},   // missing -prog
		{"gen", "-dataset", "99"},        // unknown dataset
		{"synth", "-in", "/nonexistent"}, // unreadable input
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("no error for %v", args)
		}
	}
}

func TestCheckRaiseStrategy(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	prog := filepath.Join(dir, "constraints.gr")
	if err := run([]string{"gen", "-dataset", "2", "-scale", "0.05", "-out", data}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"synth", "-in", data, "-out", prog}); err != nil {
		t.Fatal(err)
	}
	// Clean data passes even under raise.
	if err := run([]string{"check", "-in", data, "-prog", prog, "-strategy", "raise"}); err != nil {
		t.Fatalf("raise on clean data: %v", err)
	}
	if err := run([]string{"check", "-in", data, "-prog", prog, "-strategy", "explode"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
