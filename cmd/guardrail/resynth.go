package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// cmdResynth streams a CSV through the incremental, drift-aware
// synthesis driver: rows fill sliding windows of mergeable contingency
// tables, the first full window synthesizes an initial program, and
// later windows re-synthesize (warm-starting PC from the previous
// skeleton) only when their statistics drift from the baseline. The
// final program goes to -out; -json emits the driver status — windows,
// triggers, and the constraint-change event stream with old/new
// semantic fingerprints comparable to `guardrail analyze -json`.
func cmdResynth(args []string) error {
	fs := flag.NewFlagSet("resynth", flag.ContinueOnError)
	in := fs.String("in", "", "CSV stream to observe in row order (required)")
	out := fs.String("out", "", "write the final synthesized program to this path")
	asJSON := fs.Bool("json", false, "emit the driver status (events, fingerprints) as JSON on stdout")
	window := fs.Int("window", 256, "rows per drift window")
	windows := fs.Int("windows", 8, "sliding ring capacity in windows")
	alpha := fs.Float64("drift-alpha", 1e-3, "per-variable drift p-value threshold")
	eps := fs.Float64("eps", 0.02, "epsilon-validity threshold")
	seed := fs.Int64("seed", 1, "sampling seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker-pool size; 1 forces the serial pipeline")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("resynth: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read side: Close error carries no data
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("resynth: reading header of %s: %w", *in, err)
	}
	header = append([]string(nil), header...) // ReuseRecord overwrites it

	reg, tr, finish, err := of.start("resynth", *workers)
	if err != nil {
		return err
	}
	rel := dataset.New(*in, header)
	inc := synth.NewIncremental(rel, synth.IncrOptions{
		WindowRows: *window,
		MaxWindows: *windows,
		DriftAlpha: *alpha,
		Synth: synth.Options{
			Epsilon: *eps, Seed: *seed, IdentitySampler: true,
			Workers: *workers, Obs: reg, Trace: tr.Root(),
		},
	})
	for row := 0; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("resynth: reading %s row %d: %w", *in, row, err)
		}
		evs, err := inc.Observe(rec)
		if err != nil {
			return err
		}
		for _, ev := range evs {
			fmt.Fprintf(os.Stderr, "row %d: drift in %v — program %s -> %s (changed=%v)\n",
				ev.Row, ev.DriftedColumns, ev.OldFingerprint, ev.NewFingerprint, ev.Changed)
		}
	}
	// Trailing rows still participate: force the partial window through.
	evs, err := inc.Flush()
	if err != nil {
		return err
	}
	for _, ev := range evs {
		fmt.Fprintf(os.Stderr, "row %d: drift in %v — program %s -> %s (changed=%v)\n",
			ev.Row, ev.DriftedColumns, ev.OldFingerprint, ev.NewFingerprint, ev.Changed)
	}

	st := inc.Status()
	if st.Synthesized {
		text := dsl.Format(inc.Program(), rel)
		if *out != "" {
			if err := os.WriteFile(*out, []byte(text+"\n"), 0o644); err != nil {
				return err
			}
		} else if !*asJSON {
			fmt.Println(text)
		}
	} else if *out != "" {
		return fmt.Errorf("resynth: stream too short to synthesize (%d rows, window %d)", st.Rows, *window)
	}
	if *asJSON {
		if err := printJSON(st); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "observed %d rows (%d live) in %d windows: %d drift triggers, %d re-syntheses, %d constraint changes, fingerprint %s\n",
		st.Rows, st.LiveRows, st.Windows, st.Triggers, st.Resyntheses, st.Changes, st.Fingerprint)
	return finish()
}
