package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/guardrail-db/guardrail/internal/obs/debug"
	"github.com/guardrail-db/guardrail/internal/serve"
)

// loadSpec names one program registration: -load name=schema.csv,prog.gr.
type loadSpec struct {
	name, csvPath, progPath string
}

// loadFlags collects repeated -load flags.
type loadFlags []loadSpec

func (l *loadFlags) String() string {
	parts := make([]string, len(*l))
	for i, s := range *l {
		parts[i] = fmt.Sprintf("%s=%s,%s", s.name, s.csvPath, s.progPath)
	}
	return strings.Join(parts, " ")
}

func (l *loadFlags) Set(v string) error {
	name, paths, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=schema.csv,program.gr, got %q", v)
	}
	csvPath, progPath, ok := strings.Cut(paths, ",")
	if !ok || name == "" || csvPath == "" || progPath == "" {
		return fmt.Errorf("want name=schema.csv,program.gr, got %q", v)
	}
	*l = append(*l, loadSpec{name: name, csvPath: csvPath, progPath: progPath})
	return nil
}

// cmdServe runs the long-running validation daemon: rows in over HTTP,
// verdicts (or repaired rows) out, against a hot-reloadable program
// registry. SIGTERM/SIGINT stop accepting and drain in-flight requests
// with a deadline; a clean drain exits 0. SIGQUIT dumps the flight
// recorder to stderr without stopping.
func cmdServe(args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "HTTP listen address")
	var loads loadFlags
	fs.Var(&loads, "load", "register a program: name=schema.csv,program.gr (repeatable)")
	maxInflight := fs.Int("max-inflight", 64, "max concurrently-admitted validation requests; excess gets 429")
	maxBody := fs.Int64("max-body", 1<<20, "max single-row / program-upload body size in bytes")
	drain := fs.Duration("drain-timeout", 10*time.Second, "how long to wait for in-flight requests on shutdown")
	drift := fs.Bool("drift", false, "feed validated rows to the drift monitor (status on GET /v1/drift)")
	driftWindow := fs.Int("drift-window", 256, "rows per drift window")
	driftWindows := fs.Int("drift-windows", 8, "sliding ring capacity in windows")
	driftAlpha := fs.Float64("drift-alpha", 1e-3, "per-variable drift p-value threshold")
	accessLog := fs.String("access-log", "", "write one NDJSON record per request to this file (- for stderr)")
	flightSize := fs.Int("flight", 256, "flight recorder capacity in requests (0 disables); dump via GET /debug/flight or SIGQUIT")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(loads) == 0 {
		return fmt.Errorf("serve: at least one -load name=schema.csv,program.gr is required")
	}

	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, ferr := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return fmt.Errorf("serve: open access log: %w", ferr)
		}
		// Named return: a close failure (full disk, NFS) must surface as
		// a non-zero exit, not vanish into a deferred discard.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("serve: close access log: %w", cerr)
			}
		}()
		accessW = f
	}
	// The CLI convention: 0 disables, unset means the library default
	// ring; the library itself uses -1 to disable.
	if *flightSize == 0 {
		*flightSize = -1
	}

	reg, tr, finish, err := of.start("serve", *maxInflight)
	if err != nil {
		return err
	}
	registry := serve.NewRegistry(reg)
	for _, l := range loads {
		e, _, err := registry.LoadFiles(l.name, l.csvPath, l.progPath)
		if err != nil {
			return err
		}
		engine := e.EngineName()
		if e.CompileErr != "" {
			engine += " (compiled unavailable: " + e.CompileErr + ")"
		}
		fmt.Fprintf(os.Stderr, "loaded program %q: %d statements, fingerprint %s, engine %s\n",
			e.Name, len(e.Program.Stmts), e.FingerprintHex(), engine)
	}

	srv := serve.New(serve.Config{
		Registry:     registry,
		MaxInflight:  *maxInflight,
		MaxBody:      *maxBody,
		DrainTimeout: *drain,
		Obs:          reg,
		Tracer:       tr,
		AccessLog:    accessW,
		FlightSize:   *flightSize,
		FlightDump:   os.Stderr,
		Drift: serve.DriftConfig{
			Enabled:    *drift,
			WindowRows: *driftWindow,
			MaxWindows: *driftWindows,
			Alpha:      *driftAlpha,
		},
	})
	// The daemon serves /debug/flight itself; mirroring it onto the
	// -debug-addr sidecar server lets operators pull dumps without
	// touching the serving port.
	debug.Handle("/debug/flight", srv.FlightHandler())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	fmt.Fprintf(os.Stderr, "guardrail serve listening on http://%s (endpoints: /v1/check /v1/rectify /v1/programs /v1/drift /metrics /healthz /debug/flight)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, ln); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "guardrail serve: drained cleanly")
	return finish()
}
