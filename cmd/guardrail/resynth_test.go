package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/synth"
)

// genPostal writes a PostalChain CSV, optionally with a corrupted City
// column, and returns its rows (without the header).
func genPostal(t *testing.T, path string, corrupt bool) [][]string {
	t.Helper()
	args := []string{"gen", "-network", "postal", "-rows", "3000", "-seed", "11", "-out", path}
	if corrupt {
		args = append(args, "-corrupt-cols", "City", "-corrupt-rate", "1.0", "-corrupt-seed", "3")
	}
	if err := run(args); err != nil {
		t.Fatalf("gen postal: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs[1:]
}

// TestGenPostalNetwork: -network postal emits the 4-attribute chain and
// -corrupt-cols rewrites the named column deterministically per seed.
func TestGenPostalNetwork(t *testing.T) {
	dir := t.TempDir()
	clean := genPostal(t, filepath.Join(dir, "clean.csv"), false)
	if len(clean) != 3000 || len(clean[0]) != 4 {
		t.Fatalf("postal shape = %dx%d, want 3000x4", len(clean), len(clean[0]))
	}
	dirty := genPostal(t, filepath.Join(dir, "dirty.csv"), true)
	same, changed := 0, 0
	for i := range clean {
		for c := range clean[i] {
			if c == 1 { // City
				if clean[i][c] != dirty[i][c] {
					changed++
				}
				continue
			}
			if clean[i][c] != dirty[i][c] {
				t.Fatalf("row %d col %d changed outside -corrupt-cols", i, c)
			}
			same++
		}
	}
	if changed < 2000 {
		t.Fatalf("only %d City cells corrupted at rate 1.0", changed)
	}
	if err := run([]string{"gen", "-network", "postal", "-corrupt-cols", "Nope", "-out", filepath.Join(dir, "x.csv")}); err == nil {
		t.Fatal("unknown -corrupt-cols attribute accepted")
	}
	if err := run([]string{"gen", "-network", "bogus", "-out", filepath.Join(dir, "x.csv")}); err == nil {
		t.Fatal("unknown -network accepted")
	}
}

// TestResynthStationaryMatchesBatch is the CLI half of the drift e2e: a
// stationary stream never re-synthesizes and lands on the exact program
// (by semantic fingerprint) that batch synthesis computes on the same
// file.
func TestResynthStationaryMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "clean.csv")
	genPostal(t, data, false)

	var status synth.IncrStatus
	out := captureStdout(t, func() {
		if err := run([]string{"resynth", "-in", data, "-window", "500", "-windows", "4", "-json"}); err != nil {
			t.Errorf("resynth: %v", err)
		}
	})
	if err := json.Unmarshal([]byte(out), &status); err != nil {
		t.Fatalf("resynth -json output is not JSON: %v\n%s", err, out)
	}
	if status.Rows != 3000 || status.Windows != 6 || !status.Synthesized {
		t.Fatalf("resynth status = %+v", status)
	}
	if status.Triggers != 0 || status.Resyntheses != 0 || len(status.Events) != 0 {
		t.Fatalf("stationary stream re-synthesized: %+v", status)
	}

	prog := filepath.Join(dir, "batch.gr")
	if err := run([]string{"synth", "-in", data, "-identity-sampler", "-out", prog}); err != nil {
		t.Fatalf("batch synth: %v", err)
	}
	aout := captureStdout(t, func() {
		if err := run([]string{"analyze", "-in", data, "-prog", prog, "-json"}); err != nil {
			t.Errorf("analyze: %v", err)
		}
	})
	var rpt struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal([]byte(aout), &rpt); err != nil {
		t.Fatal(err)
	}
	if status.Fingerprint != rpt.Fingerprint {
		t.Fatalf("streamed fingerprint %s != batch %s", status.Fingerprint, rpt.Fingerprint)
	}
}

// TestResynthShiftedStream: stitching a corrupted-City suffix onto a
// clean prefix fires the drift trigger, and the change event names the
// shifted column.
func TestResynthShiftedStream(t *testing.T) {
	dir := t.TempDir()
	clean := genPostal(t, filepath.Join(dir, "clean.csv"), false)
	dirty := genPostal(t, filepath.Join(dir, "dirty.csv"), true)

	stream := filepath.Join(dir, "stream.csv")
	var sb strings.Builder
	sb.WriteString("PostalCode,City,State,Country\n")
	w := csv.NewWriter(&sb)
	for _, r := range clean[:1500] {
		_ = w.Write(r)
	}
	for _, r := range dirty[1500:] {
		_ = w.Write(r)
	}
	w.Flush()
	if err := os.WriteFile(stream, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	progOut := filepath.Join(dir, "final.gr")
	var status synth.IncrStatus
	out := captureStdout(t, func() {
		if err := run([]string{"resynth", "-in", stream, "-window", "500", "-windows", "4", "-json", "-out", progOut}); err != nil {
			t.Errorf("resynth: %v", err)
		}
	})
	if err := json.Unmarshal([]byte(out), &status); err != nil {
		t.Fatalf("resynth -json output is not JSON: %v\n%s", err, out)
	}
	if status.Triggers == 0 || status.Resyntheses == 0 || len(status.Events) == 0 {
		t.Fatalf("shifted stream did not trigger: %+v", status)
	}
	named := false
	for _, ev := range status.Events {
		for _, c := range ev.DriftedColumns {
			if c == "City" {
				named = true
			}
		}
	}
	if !named {
		t.Fatalf("events do not name the shifted column: %+v", status.Events)
	}
	if _, err := os.Stat(progOut); err != nil {
		t.Fatalf("final program missing: %v", err)
	}
}

func TestResynthErrors(t *testing.T) {
	if err := run([]string{"resynth"}); err == nil {
		t.Fatal("resynth without -in accepted")
	}
	if err := run([]string{"resynth", "-in", "/nonexistent"}); err == nil {
		t.Fatal("resynth with missing file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A header-only stream never synthesizes, so -out has nothing to write.
	if err := run([]string{"resynth", "-in", empty, "-window", "100", "-out", filepath.Join(dir, "p.gr")}); err == nil {
		t.Fatal("resynth wrote a program from an unsynthesized stream")
	}
}
