// Command vetguard is the project-specific Go source linter — the second
// layer of Guardrail's static-analysis subsystem. Where internal/dsl/verify
// checks synthesized programs, vetguard checks the Go code that synthesizes
// them, enforcing the determinism and hygiene invariants a reproducible
// experiment pipeline depends on.
//
// The checks themselves live in internal/vet: a reusable, stdlib-only
// analysis library with a CFG builder, dominance, and a generic dataflow
// solver, plus the registered checks —
//
//	maporder:    map iteration order reaching an order-sensitive sink
//	             (output stream, unsorted append, float accumulation),
//	             both the syntactic in-loop form and flow-sensitive
//	             escapes the loop-local view cannot see
//	globalrand:  use of the global math/rand source in non-test code —
//	             experiments must draw from seeded *rand.Rand instances
//	ignorederr:  a call — plain, deferred, or in a go statement — whose
//	             error result is silently discarded
//	nakedgo:     a `go` statement outside internal/par — pipeline
//	             concurrency must route through the worker pool so it
//	             inherits ordered collection, cancellation, and panic
//	             propagation
//	regcopy:     a receiver, parameter, result, or range value that moves
//	             a type holding sync or sync/atomic state by value —
//	             copying forks the lock word or counter register
//	spanleak:    an obs.Span or trace.Span received from a call with a
//	             path through the function that never calls Stop/End —
//	             an unclosed span loses its stage timing or exports as an
//	             unfinished trace record
//	lockbalance: a sync.Mutex/RWMutex still held on some path to return —
//	             the next caller to Lock deadlocks
//	deaderr:     an error assigned from a call, then overwritten or
//	             dropped on some path before anything reads it
//
// Usage:
//
//	go run ./cmd/vetguard ./...
//	go run ./cmd/vetguard -json ./...
//
// Findings print as file:line:col: [check] message — the shape the GitHub
// Actions problem matcher in .github/vetguard-matcher.json annotates — and
// make the process exit 1. Under -json the findings print instead as one
// machine-readable JSON document on stdout with the same exit contract
// (0 clean, 1 findings, 2 invocation failure). A finding can be suppressed
// with a `//vetguard:ignore` comment on the same line or the line above.
// Only stdlib go/ast, go/parser and go/types are used; package metadata
// and export data come from `go list`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/guardrail-db/guardrail/internal/vet"
)

func main() {
	fs := flag.NewFlagSet("vetguard", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit findings as one JSON document on stdout")
	_ = fs.Parse(os.Args[1:])
	findings, err := analyze(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetguard:", err)
		os.Exit(2)
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "vetguard:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vetguard: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// writeJSON renders findings as the -json document: a stable envelope CI
// jobs can parse without scraping the text format.
func writeJSON(w io.Writer, findings []vet.Finding) error {
	doc := struct {
		Findings []jsonFinding `json:"findings"`
		Count    int           `json:"count"`
	}{Findings: []jsonFinding{}, Count: len(findings)}
	for _, f := range findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Check: f.Check, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// listedPkg is the subset of `go list -json` output vetguard needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// analyze lints the packages matched by patterns (default "./...") and
// returns the findings in the canonical order: file, line, column, check,
// message — a total order, so emission is byte-stable regardless of the
// order packages were walked in.
func analyze(patterns []string) ([]vet.Finding, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("vetguard: no export data for %q", path)
		}
		return os.Open(file)
	})

	var findings []vet.Finding
	linted := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		fs, err := lintPackage(p, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		linted++
		findings = append(findings, fs...)
	}
	// A typo'd pattern must not look like a clean run: with `go list -e` a
	// nonexistent path still yields an entry, just one with no GoFiles.
	if linted == 0 {
		return nil, fmt.Errorf("no lintable packages matched %s", strings.Join(patterns, " "))
	}
	vet.SortFindings(findings)
	return findings, nil
}

// goList resolves patterns to packages with compiled export data via the go
// command: `-export` populates .Export for every package in the `-deps`
// closure, which is exactly what the typechecker's importer needs.
func goList(patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loadPackage parses and typechecks one listed package. Test files are
// not listed in GoFiles, so the checks see only non-test code.
func loadPackage(p listedPkg, imp types.Importer) (*token.FileSet, *types.Info, []*ast.File, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		// Keep going on type errors (e.g. a package that no longer
		// compiles): checks degrade gracefully on partial info.
		Error: func(error) {},
	}
	_, _ = conf.Check(p.ImportPath, fset, files, info)
	return fset, info, files, nil
}

// lintPackage runs every registered internal/vet check over one package
// and applies //vetguard:ignore suppression.
func lintPackage(p listedPkg, imp types.Importer) ([]vet.Finding, error) {
	fset, info, files, err := loadPackage(p, imp)
	if err != nil {
		return nil, err
	}
	var findings []vet.Finding
	for _, file := range files {
		suppressed := suppressedLines(fset, file)
		for _, f := range vet.RunChecks(fset, info, file, p.ImportPath) {
			if suppressed[f.Pos.Line] {
				continue
			}
			findings = append(findings, f)
		}
	}
	return findings, nil
}

// suppressedLines collects the lines covered by //vetguard:ignore comments:
// the comment's own line and the line below it.
func suppressedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "vetguard:ignore") {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}
