package main

import (
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"math/rand"
	"os"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/vet"
)

// countByCheck buckets findings by check name.
func countByCheck(fs []vet.Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Check]++
	}
	return out
}

// TestBuggyFixture: every seeded bug class is flagged, the annotated
// instances are suppressed.
func TestBuggyFixture(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/buggy"})
	if err != nil {
		t.Fatal(err)
	}
	got := countByCheck(findings)
	want := map[string]int{
		"maporder":    8,
		"globalrand":  2,
		"ignorederr":  3,
		"nakedgo":     3,
		"regcopy":     5,
		"spanleak":    3,
		"lockbalance": 2,
		"deaderr":     2,
	}
	for check, n := range want {
		if got[check] != n {
			t.Errorf("%s: got %d findings, want %d\nall: %v", check, got[check], n, findings)
		}
	}
	total := 0
	for _, n := range want {
		total += n
	}
	if len(findings) != total {
		t.Errorf("total findings = %d, want %d (is the //vetguard:ignore annotation honored?)\n%v", len(findings), total, findings)
	}
	floatFlagged := false
	for _, f := range findings {
		if f.Check == "maporder" && strings.Contains(f.Message, "float") {
			floatFlagged = true
		}
	}
	if !floatFlagged {
		t.Error("float accumulation over map iteration not flagged")
	}
	for _, f := range findings {
		if !strings.Contains(f.Pos.Filename, "buggy") {
			t.Errorf("finding outside fixture: %v", f)
		}
		if f.Pos.Line <= 0 || f.Message == "" {
			t.Errorf("malformed finding: %v", f)
		}
	}
}

// TestFlowSensitiveFindings pins the cases only the CFG/dataflow layer
// can see: the two lockbalance leaks, the two deaderr shapes, and the
// maporder escapes the syntactic fast path provably misses (plain-form
// float accumulation, a scalar escaping to output after the loop, and
// accumulation through an unsorted key slice in a second loop).
func TestFlowSensitiveFindings(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/buggy"})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"g.mu.Lock (line 184) is still held",
		"g.mu.RLock (line 201) is still held",
		"overwritten at line 215 before it is ever read",
		"this return discards the error in err (assigned at line 225)",
		"float g accumulates values in map-iteration order (plain assignment form)",
		"fmt.Println is called with a value derived from map iteration",
		"float total accumulates values derived from map iteration",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding containing %q\nall: %v", want, findings)
		}
	}
}

// TestCleanFixture: exonerated idioms (collect-then-sort, per-iteration
// accumulators, seeded sources, handled errors, explicit-discard Close,
// balanced locks, read-before-overwrite errors) pass.
func TestCleanFixture(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/clean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean fixture produced findings: %v", findings)
	}
}

// TestRegistryCompleteness is the check-registry gate: every registered
// check must prove itself both ways — at least one finding on the buggy
// fixture (the check can fire) and zero on the clean fixture (it knows
// the exonerating idiom). A check that cannot meet both has no
// regression anchor and silently rots.
func TestRegistryCompleteness(t *testing.T) {
	buggy, err := analyze([]string{"./testdata/src/buggy"})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := analyze([]string{"./testdata/src/clean"})
	if err != nil {
		t.Fatal(err)
	}
	buggyCounts := countByCheck(buggy)
	cleanCounts := countByCheck(clean)
	checks := vet.Checks()
	if len(checks) == 0 {
		t.Fatal("no checks registered")
	}
	for _, c := range checks {
		if c.Doc == "" {
			t.Errorf("check %s has no Doc string", c.Name)
		}
		if buggyCounts[c.Name] == 0 {
			t.Errorf("check %s has no buggy-fixture finding; add one so the check stays anchored", c.Name)
		}
		if cleanCounts[c.Name] != 0 {
			t.Errorf("check %s fires on the clean fixture: %v", c.Name, clean)
		}
	}
	// And the reverse: no finding from an unregistered check name.
	known := map[string]bool{}
	for _, c := range checks {
		known[c.Name] = true
	}
	for _, f := range buggy {
		if !known[f.Check] {
			t.Errorf("finding from unregistered check %q: %v", f.Check, f)
		}
	}
}

// TestFindingOrderDeterministic: the emitted order must not depend on
// the order packages were named, walked, or on any map iteration inside
// the checks — file, line, column, check, message is a total order.
func TestFindingOrderDeterministic(t *testing.T) {
	patterns := []string{"./testdata/src/buggy", "./testdata/src/clean", "./testdata/src/internal/par"}
	reversed := []string{"./testdata/src/internal/par", "./testdata/src/clean", "./testdata/src/buggy"}

	render := func(fs []vet.Finding) string {
		var b strings.Builder
		for _, f := range fs {
			fmt.Fprintln(&b, f)
		}
		return b.String()
	}

	a, err := analyze(patterns)
	if err != nil {
		t.Fatal(err)
	}
	b, err := analyze(reversed)
	if err != nil {
		t.Fatal(err)
	}
	if render(a) != render(b) {
		t.Errorf("package order changed emission:\n--- forward ---\n%s--- reversed ---\n%s", render(a), render(b))
	}

	// Shuffling findings and re-sorting must reproduce the same bytes:
	// the comparator is a total order with no ties left to input order.
	for seed := int64(1); seed <= 5; seed++ {
		shuffled := append([]vet.Finding(nil), a...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		vet.SortFindings(shuffled)
		if render(shuffled) != render(a) {
			t.Fatalf("seed %d: shuffle+sort changed emission", seed)
		}
	}
}

// TestParFixtureExempt: a package whose import path ends in internal/par
// may use go statements — that is where the worker pool lives.
func TestParFixtureExempt(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/internal/par"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/par fixture should be exempt from nakedgo: %v", findings)
	}
}

// TestDebugFixtureExempt: the debug HTTP server package may launch its
// process-lifetime server goroutine without routing through the pool.
func TestDebugFixtureExempt(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/internal/obs/debug"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/obs/debug fixture should be exempt from nakedgo: %v", findings)
	}
}

// TestServeFixtureExempt: the validation daemon may launch its
// process-lifetime http.Server goroutine without routing through the
// pool.
func TestServeFixtureExempt(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/internal/serve"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/serve fixture should be exempt from nakedgo: %v", findings)
	}
}

// TestSpanLeakMatchesLegacyOracle is the migration proof: the CFG-based
// spanleak in internal/vet must produce byte-identical findings to the
// original enclosure-chain implementation (kept verbatim in
// oracle_test.go) on both fixtures.
func TestSpanLeakMatchesLegacyOracle(t *testing.T) {
	patterns := []string{"./testdata/src/buggy", "./testdata/src/clean"}

	// New engine, spanleak only.
	all, err := analyze(patterns)
	if err != nil {
		t.Fatal(err)
	}
	var engine []vet.Finding
	for _, f := range all {
		if f.Check == "spanleak" {
			engine = append(engine, f)
		}
	}

	// Legacy oracle over the same packages, with the same suppression.
	pkgs, err := goList(patterns)
	if err != nil {
		t.Fatal(err)
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var legacy []vet.Finding
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		fset, info, files, err := loadPackage(p, imp)
		if err != nil {
			t.Fatal(err)
		}
		for _, file := range files {
			suppressed := suppressedLines(fset, file)
			c := &legacyChecker{fset: fset, info: info}
			c.run(file)
			for _, f := range c.findings {
				if !suppressed[f.Pos.Line] {
					legacy = append(legacy, f)
				}
			}
		}
	}
	vet.SortFindings(legacy)

	render := func(fs []vet.Finding) string {
		var b strings.Builder
		for _, f := range fs {
			fmt.Fprintln(&b, f)
		}
		return b.String()
	}
	if render(engine) != render(legacy) {
		t.Errorf("CFG spanleak diverges from the legacy oracle:\n--- engine ---\n%s--- legacy ---\n%s", render(engine), render(legacy))
	}
	if len(engine) == 0 {
		t.Error("oracle comparison is vacuous: no spanleak findings on the fixtures")
	}
}

// TestRepositoryIsClean is the acceptance gate: the whole module must lint
// clean, so CI's `go run ./cmd/vetguard ./...` exits 0.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short mode")
	}
	findings, err := analyze([]string{"github.com/guardrail-db/guardrail/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("repository has vetguard findings:\n%v", findings)
	}
}
