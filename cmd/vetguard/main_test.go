package main

import (
	"strings"
	"testing"
)

// countByCheck buckets findings by check name.
func countByCheck(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Check]++
	}
	return out
}

// TestBuggyFixture: every seeded bug class is flagged, the annotated
// instance is suppressed.
func TestBuggyFixture(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/buggy"})
	if err != nil {
		t.Fatal(err)
	}
	got := countByCheck(findings)
	want := map[string]int{"maprange": 4, "globalrand": 2, "ignorederr": 1, "nakedgo": 2, "regcopy": 5, "spanleak": 3}
	for check, n := range want {
		if got[check] != n {
			t.Errorf("%s: got %d findings, want %d\nall: %v", check, got[check], n, findings)
		}
	}
	if total := len(findings); total != 17 {
		t.Errorf("total findings = %d, want 17 (is the //vetguard:ignore annotation honored?)\n%v", total, findings)
	}
	floatFlagged := false
	for _, f := range findings {
		if f.Check == "maprange" && strings.Contains(f.Message, "float") {
			floatFlagged = true
		}
	}
	if !floatFlagged {
		t.Error("float accumulation over map iteration not flagged")
	}
	for _, f := range findings {
		if !strings.Contains(f.Pos.Filename, "buggy") {
			t.Errorf("finding outside fixture: %v", f)
		}
		if f.Pos.Line <= 0 || f.Message == "" {
			t.Errorf("malformed finding: %v", f)
		}
	}
}

// TestCleanFixture: exonerated idioms (collect-then-sort, per-iteration
// accumulators, seeded sources, handled errors, deferred Close) pass.
func TestCleanFixture(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/clean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean fixture produced findings: %v", findings)
	}
}

// TestParFixtureExempt: a package whose import path ends in internal/par
// may use go statements — that is where the worker pool lives.
func TestParFixtureExempt(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/internal/par"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/par fixture should be exempt from nakedgo: %v", findings)
	}
}

// TestDebugFixtureExempt: the debug HTTP server package may launch its
// process-lifetime server goroutine without routing through the pool.
func TestDebugFixtureExempt(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/internal/obs/debug"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/obs/debug fixture should be exempt from nakedgo: %v", findings)
	}
}

// TestServeFixtureExempt: the validation daemon may launch its
// process-lifetime http.Server goroutine without routing through the
// pool.
func TestServeFixtureExempt(t *testing.T) {
	findings, err := analyze([]string{"./testdata/src/internal/serve"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal/serve fixture should be exempt from nakedgo: %v", findings)
	}
}

// TestRepositoryIsClean is the acceptance gate: the whole module must lint
// clean, so CI's `go run ./cmd/vetguard ./...` exits 0.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short mode")
	}
	findings, err := analyze([]string{"github.com/guardrail-db/guardrail/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("repository has vetguard findings:\n%v", findings)
	}
}
