package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checker lints one file with the package's type information.
type checker struct {
	fset     *token.FileSet
	info     *types.Info
	file     *ast.File
	pkgPath  string
	findings []Finding
}

func (c *checker) report(pos token.Pos, check, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Pos:     c.fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *checker) run() {
	for _, decl := range c.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c.checkRegCopySignature(fn)
		c.checkFunc(fn.Body)
		c.checkSpanLeak(fn)
	}
}

// checkFunc applies the statement-level checks within one function body.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			c.checkMapRange(n, body)
			c.checkRegCopyRange(n)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				c.checkIgnoredError(call)
			}
		case *ast.CallExpr:
			c.checkGlobalRand(n)
		case *ast.GoStmt:
			c.checkNakedGo(n)
		}
		return true
	})
}

// --- check: nakedgo ---

// nakedGoExempt lists the packages allowed to use raw `go` statements:
// the worker pool itself, and the two HTTP server packages (the debug
// server and the validation daemon) whose goroutines live for the whole
// process — http.Server owns its lifecycle, so routing it through a
// par.Pool would add nothing.
var nakedGoExempt = []string{"internal/par", "internal/obs/debug", "internal/serve"}

// checkNakedGo flags `go` statements outside the exempt packages. All
// pipeline concurrency must route through the worker pool: the pool is what
// carries the ordered-collection, cancellation, and panic-propagation
// guarantees that keep parallel synthesis deterministic and debuggable. A
// goroutine launched anywhere else sits outside those guarantees.
func (c *checker) checkNakedGo(gs *ast.GoStmt) {
	for _, e := range nakedGoExempt {
		if c.pkgPath == e || strings.HasSuffix(c.pkgPath, "/"+e) {
			return
		}
	}
	c.report(gs.Pos(), "nakedgo",
		"naked go statement outside internal/par; submit the work to a par.Pool (or par.Map) so it inherits ordering, cancellation, and panic propagation")
}

// --- check: globalrand ---

// constructors of independent sources are the legitimate uses of the
// package-level API; everything else draws from the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// checkGlobalRand flags calls through the math/rand package object itself
// (rand.Intn, rand.Shuffle, ...): library code must draw from a seeded
// *rand.Rand so experiments are reproducible.
func (c *checker) checkGlobalRand(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := c.info.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	path := pkg.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if randConstructors[sel.Sel.Name] {
		return
	}
	c.report(call.Pos(), "globalrand",
		"call to global %s.%s breaks seeded reproducibility; draw from a *rand.Rand built with rand.New(rand.NewSource(seed))",
		path, sel.Sel.Name)
}

// --- check: ignorederr ---

// fmtPrinters are fmt functions whose error returns are discarded by
// convention (writes to stdout/stderr); mirroring errcheck's defaults.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// checkIgnoredError flags expression-statement calls whose (last) result is
// an error nobody looks at. Deferred calls (defer f.Close()) are statements
// of a different kind and are deliberately not flagged.
func (c *checker) checkIgnoredError(call *ast.CallExpr) {
	t := c.info.TypeOf(call)
	if t == nil {
		return
	}
	returnsErr := false
	switch tt := t.(type) {
	case *types.Tuple:
		if tt.Len() > 0 {
			returnsErr = isErrorType(tt.At(tt.Len() - 1).Type())
		}
	default:
		returnsErr = isErrorType(t)
	}
	if !returnsErr || c.errExempt(call) {
		return
	}
	c.report(call.Pos(), "ignorederr", "result of %s returns an error that is silently discarded", calleeName(call))
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errExempt reports whether call's discarded error is conventionally safe:
// the fmt print family and methods on in-memory builders that document
// a nil error.
func (c *checker) errExempt(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := c.info.Uses[selIdent(sel)].(*types.PkgName); ok {
		if pkg.Imported().Path() == "fmt" && fmtPrinters[sel.Sel.Name] {
			return true
		}
		return false
	}
	if s, ok := c.info.Selections[sel]; ok {
		recv := s.Recv().String()
		if strings.Contains(recv, "strings.Builder") || strings.Contains(recv, "bytes.Buffer") {
			return true
		}
	}
	return false
}

func selIdent(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id
	}
	return nil
}

// calleeName renders the called expression for the message.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// --- check: regcopy ---

// checkRegCopySignature flags receivers, parameters, and results that move a
// value holding sync state (a sync.Mutex, sync.WaitGroup, atomic.Int64, ...)
// by value. Copying such a value forks its internal registers — the copy's
// lock word or counter diverges from the original's, which silently breaks
// mutual exclusion. go vet's copylocks covers assignments; this covers the
// signature surface, where the copy is implied rather than written.
func (c *checker) checkRegCopySignature(fn *ast.FuncDecl) {
	flag := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := c.info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if holder := syncStateName(t, nil); holder != "" {
				c.report(field.Pos(), "regcopy",
					"%s of %s is passed by value, copying the %s it holds; use a pointer",
					kind, fn.Name.Name, holder)
			}
		}
	}
	flag(fn.Recv, "receiver")
	flag(fn.Type.Params, "parameter")
	flag(fn.Type.Results, "result")
}

// checkRegCopyRange flags `for _, v := range xs` when each iteration copies a
// value holding sync state out of the collection.
func (c *checker) checkRegCopyRange(rs *ast.RangeStmt) {
	if rs.Value == nil || rs.Tok != token.DEFINE {
		return
	}
	t := c.info.TypeOf(rs.Value)
	if t == nil {
		return
	}
	if holder := syncStateName(t, nil); holder != "" {
		c.report(rs.Value.Pos(), "regcopy",
			"range value copies the %s held by each element; iterate by index or store pointers", holder)
	}
}

// syncStateName reports the first sync-state type reachable from t by value
// ("" if none): a non-interface named type from sync or sync/atomic, found
// directly, in a struct field, or in an array element. Pointers, slices,
// maps, and channels share state rather than copy it, so they are not
// descended into. The seen set guards against recursive types.
func syncStateName(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		if obj := tt.Obj(); obj != nil && obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if path == "sync" || path == "sync/atomic" {
				// sync.Locker and friends are interfaces: copying an
				// interface value copies a reference, not the state.
				if _, isIface := tt.Underlying().(*types.Interface); !isIface {
					return path + "." + obj.Name()
				}
				return ""
			}
		}
		return syncStateName(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name := syncStateName(tt.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return syncStateName(tt.Elem(), seen)
	}
	return ""
}

// --- check: spanleak ---

// isSpanType reports whether t is one of the observability span value
// types — obs.Span (stage timer) or trace.Span (trace-tree node). Matched
// by package-path suffix so the testdata fixtures (whose import paths are
// prefixed with the fixture directory) resolve the same way as real code.
func isSpanType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Span" {
		return false
	}
	path := obj.Pkg().Path()
	for _, p := range []string{"internal/obs", "internal/obs/trace"} {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// spanVar tracks one span-typed local between its first call-assignment
// and the analysis at the end of the function.
type spanVar struct {
	obj       types.Object
	name      string
	assignPos token.Pos
	deferred  bool        // defer sp.Stop() / defer sp.End() anywhere
	returned  bool        // sp appears in a return value: ownership moves out
	endPos    []token.Pos // non-deferred sp.Stop()/sp.End() call positions
}

// checkSpanLeak flags span-typed locals received from a call (obs's
// Histogram.Start, trace's Scope.Start, ...) that some path through the
// function abandons without Stop/End: an unclosed obs span never records
// its stage duration, and an unclosed trace span exports as an unfinished
// record with no duration. A span is accounted for when it is closed by
// a defer, closed on the way to each subsequent return statement, or
// handed to the caller in a return value. Chained attribute calls
// (sp.Int(...).End()) count — the receiver chain is unwound to its root.
// Close-site coverage is branch-aware: an End inside a conditional does
// not cover a return outside it.
func (c *checker) checkSpanLeak(fn *ast.FuncDecl) {
	vars := map[types.Object]*spanVar{}

	// Pass 1: collect span-typed call-assignments and every Stop/End.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if _, isCall := rhs.(*ast.CallExpr); !isCall {
					continue
				}
				obj := c.info.ObjectOf(id)
				if obj == nil || !isSpanType(obj.Type()) {
					continue
				}
				if _, seen := vars[obj]; !seen {
					vars[obj] = &spanVar{obj: obj, name: id.Name, assignPos: n.Pos()}
				}
			}
		case *ast.DeferStmt:
			if sv := c.spanEndCallee(n.Call, vars); sv != nil {
				sv.deferred = true
			}
		case *ast.CallExpr:
			if sv := c.spanEndCallee(n, vars); sv != nil {
				sv.endPos = append(sv.endPos, n.Pos())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if sv, tracked := vars[c.info.ObjectOf(id)]; tracked {
							sv.returned = true
						}
					}
					return true
				})
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: every return statement in the span's scope needs a covering
	// Stop/End (unless the span is deferred or returned), and the
	// fall-through path needs at least one close overall.
	for _, sv := range vars {
		if sv.deferred || sv.returned {
			continue
		}
		if len(sv.endPos) == 0 {
			c.report(sv.assignPos, "spanleak",
				"span %s is started but never closed; call %s.Stop()/%s.End() or defer it",
				sv.name, sv.name, sv.name)
			continue
		}
		endChains := make([][]ast.Node, len(sv.endPos))
		for i, p := range sv.endPos {
			endChains[i] = stripEnclosing(enclosureChain(fn.Body, p), sv.assignPos)
		}
		scope := sv.obj.Parent()
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			// A return inside a nested function literal exits that literal,
			// not the function the span lives in — unless the span itself was
			// started inside it.
			if lit, ok := n.(*ast.FuncLit); ok {
				if !(lit.Pos() <= sv.assignPos && sv.assignPos < lit.End()) {
					return false
				}
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() < sv.assignPos {
				return true
			}
			if scope != nil && !scope.Contains(ret.Pos()) {
				return true // span's variable is out of scope here
			}
			retChain := stripEnclosing(enclosureChain(fn.Body, ret.Pos()), sv.assignPos)
			closed := false
			for i, p := range sv.endPos {
				if p > sv.assignPos && p < ret.Pos() && chainPrefix(endChains[i], retChain) {
					closed = true
					break
				}
			}
			if !closed {
				c.report(ret.Pos(), "spanleak",
					"return path abandons span %s without Stop/End (started at line %d)",
					sv.name, c.fset.Position(sv.assignPos).Line)
			}
			return true
		})
	}
}

// enclosureChain returns the stack of control-flow constructs (branches,
// loops, switch clauses, function literals, and their blocks) enclosing
// pos within root, outermost first.
func enclosureChain(root ast.Node, pos token.Pos) []ast.Node {
	var stack, chain []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if chain == nil && n.Pos() == pos {
			for _, s := range stack[:len(stack)-1] {
				switch s.(type) {
				case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
					*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
					*ast.CaseClause, *ast.CommClause, *ast.FuncLit, *ast.BlockStmt:
					chain = append(chain, s)
				}
			}
		}
		return true
	})
	return chain
}

// stripEnclosing drops the leading chain nodes that also enclose pos:
// what remains is the chain relative to the span's assignment, so
// constructs shared with the assignment (e.g. the loop both live in)
// don't count as extra conditionality.
func stripEnclosing(chain []ast.Node, pos token.Pos) []ast.Node {
	i := 0
	for i < len(chain) && chain[i].Pos() <= pos && pos < chain[i].End() {
		i++
	}
	return chain[i:]
}

// chainPrefix reports whether close-site chain a is a prefix of
// return-site chain b: the close dominates the return only when every
// conditional construct the close sits in also encloses the return.
func chainPrefix(a, b []ast.Node) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spanEndCallee returns the tracked span a Stop/End call closes, if any:
// the call's receiver chain (sp.Int(...).End()) is unwound to its root
// identifier and matched against the tracked locals.
func (c *checker) spanEndCallee(call *ast.CallExpr, vars map[types.Object]*spanVar) *spanVar {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stop" && sel.Sel.Name != "End") {
		return nil
	}
	id := rootIdent(sel.X)
	if id == nil {
		return nil
	}
	return vars[c.info.ObjectOf(id)]
}

// rootIdent unwinds a receiver chain (a.B().C.D(...)) to its leftmost
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// --- check: maprange ---

// checkMapRange flags `for ... := range m` over a map when the iteration
// appends to a slice that outlives the loop (without the slice being sorted
// later in the function), writes directly to an output stream, or
// accumulates into a floating-point variable that outlives the loop: Go
// randomizes map iteration order, so the first two sinks make the result
// differ run to run, and the third makes it differ in the low bits —
// float addition is not associative, so accumulation order changes the
// rounding (the gFromStrata G² bug: p-values near the alpha threshold
// flipped between runs).
func (c *checker) checkMapRange(rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := c.info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	var appendTargets, floatTargets []string
	var outputCall string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !c.isBuiltinAppend(call) || i >= len(n.Lhs) {
					continue
				}
				tgt := n.Lhs[i]
				if c.declaredWithin(tgt, rs.Body) {
					continue // per-iteration accumulator; order cannot leak
				}
				appendTargets = append(appendTargets, types.ExprString(tgt))
			}
			if tgt := c.floatAccumTarget(n, rs.Body); tgt != "" {
				floatTargets = append(floatTargets, tgt)
			}
		case *ast.CallExpr:
			if outputCall == "" && c.isOutputCall(n) {
				outputCall = calleeName(n)
			}
		}
		return true
	})

	if outputCall != "" {
		c.report(rs.Pos(), "maprange",
			"map iteration writes output via %s in nondeterministic order", outputCall)
	}
	for _, tgt := range appendTargets {
		if c.sortedAfter(tgt, rs, fnBody) {
			continue
		}
		c.report(rs.Pos(), "maprange",
			"map iteration appends to %s in nondeterministic order and %s is never sorted afterwards", tgt, tgt)
	}
	for _, tgt := range floatTargets {
		c.report(rs.Pos(), "maprange",
			"map iteration accumulates into float %s in nondeterministic order; float addition is not associative, so the rounding differs run to run — iterate the keys in sorted order", tgt)
	}
}

// floatAccumTarget returns the rendered target of a floating-point
// compound accumulation (+=, -=, *=, /=) whose variable outlives the
// loop body, or "". Integer accumulation commutes exactly and is fine in
// any order; float accumulation picks up order-dependent rounding.
func (c *checker) floatAccumTarget(n *ast.AssignStmt, body ast.Node) string {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	if len(n.Lhs) != 1 {
		return ""
	}
	t := c.info.TypeOf(n.Lhs[0])
	if t == nil {
		return ""
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsFloat|types.IsComplex) == 0 {
		return ""
	}
	if c.declaredWithin(n.Lhs[0], body) {
		return ""
	}
	return types.ExprString(n.Lhs[0])
}

func (c *checker) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := c.info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin || obj == nil
}

// declaredWithin reports whether expr is an identifier whose declaration
// lies inside node (e.g. a slice created fresh on every loop iteration).
// Selector expressions (struct fields) always count as outer.
func (c *checker) declaredWithin(expr ast.Expr, node ast.Node) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isOutputCall reports whether call writes to an output stream: the fmt
// print family or a Write*/print method on any receiver.
func (c *checker) isOutputCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := c.info.Uses[selIdent(sel)].(*types.PkgName); ok {
		return pkg.Imported().Path() == "fmt" && fmtPrinters[sel.Sel.Name]
	}
	name := sel.Sel.Name
	return strings.HasPrefix(name, "Write") || name == "Print" || name == "Printf"
}

// sortedAfter reports whether a sort or slices package sort call
// mentioning target appears after the range statement within the
// enclosing function — the canonical collect-then-sort idiom.
func (c *checker) sortedAfter(target string, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := c.info.Uses[selIdent(sel)].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkg.Imported().Path() {
		case "sort":
		case "slices":
			if !strings.HasPrefix(sel.Sel.Name, "Sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(types.ExprString(arg), target) {
				found = true
				break
			}
		}
		return true
	})
	return found
}
