// Package clean is a vetguard test fixture of patterns that must NOT be
// flagged: the collect-then-sort idiom, order-insensitive accumulation,
// seeded rand sources, and handled errors.
package clean

import (
	"fmt"
	"math/rand"
	"os"
	"slices"
	"sort"
	"sync"

	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// SortedKeys is the canonical deterministic map iteration.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SlicesSortedKeys exonerates via the slices package instead of sort.
func SlicesSortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedSlice exonerates via sort.Slice after the loop.
func SortedSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Sum accumulates order-insensitively: integer addition commutes
// exactly, so map order cannot leak.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SortedFloatSum is the deterministic form of float accumulation over a
// map: collect the keys, sort them, then add in sorted order.
func SortedFloatSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// PerIterationFloat accumulates into a float scoped to one iteration of
// the map loop, so no cross-iteration order can leak.
func PerIterationFloat(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var local float64
		for _, v := range vs {
			local += v
		}
		if local > 0 {
			n++
		}
	}
	return n
}

// PerIteration appends only to a slice scoped to one iteration.
func PerIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v*2)
		}
		n += len(local)
	}
	return n
}

// SeededRand draws from an owned, seeded source.
func SeededRand(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// HandledError propagates the error.
func HandledError(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	fmt.Println("removed", path)
	return nil
}

// DeferredClose discards the read-side Close error explicitly — the
// sanctioned idiom now that deferred calls are checked too.
func DeferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return nil
}

// counter holds a mutex; passing it around by pointer shares the lock.
type counter struct {
	mu sync.Mutex
	n  int
}

// PointerParam shares the lock instead of copying it.
func PointerParam(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// PointerReceiver is the canonical method shape for lock-holding types.
func (c *counter) Bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// LockerParam takes the sync.Locker interface: copying an interface value
// copies a reference, not the mutex behind it.
func LockerParam(l sync.Locker) {
	l.Lock()
	l.Unlock()
}

// SliceOfLocks passes a slice header by value — the mutexes themselves stay
// shared — and iterates by index so no element is copied.
func SliceOfLocks(ms []sync.Mutex) {
	for i := range ms {
		ms[i].Lock()
		ms[i].Unlock()
	}
}

// PointerElements ranges over pointers, so the value variable copies only a
// pointer.
func PointerElements(cs []*counter) int {
	n := 0
	for _, c := range cs {
		n += c.n
	}
	return n
}

// DeferredSpan closes the span with the canonical defer.
func DeferredSpan(sc trace.Scope) {
	sp := sc.Start("stage")
	defer sp.End()
	sp.Event("tick")
}

// ClosedOnEveryPath ends the stage timer on both the error and the happy
// path.
func ClosedOnEveryPath(h *obs.Histogram, fail bool) error {
	sp := h.Start()
	if fail {
		sp.Stop()
		return fmt.Errorf("boom")
	}
	sp.Stop()
	return nil
}

// ClosedBeforeBranch ends the span unconditionally before the error
// check — the guard-loop idiom.
func ClosedBeforeBranch(sc trace.Scope, err error) error {
	sp := sc.Start("row")
	sp.End()
	if err != nil {
		return err
	}
	return nil
}

// OwnershipMoves hands the span to the caller, who closes it.
func OwnershipMoves(sc trace.Scope) trace.Span {
	sp := sc.Start("handed-off").Int("k", 1)
	return sp
}

// SampledSpan mirrors the guard's 1-in-N sampling: a zero-value span,
// conditionally started, unconditionally ended (End on a zero span is a
// no-op).
func SampledSpan(sc trace.Scope, rows int) {
	var sp trace.Span
	for i := 0; i < rows; i++ {
		if i%100 == 0 {
			sp = sc.Start("row").Int("row", int64(i))
		}
		sp.End()
	}
}

// BalancedEarlyReturn releases the lock on the early-return path before
// leaving — the explicit-unlock counterpart of defer.
func BalancedEarlyReturn(c *counter, bail bool) int {
	c.mu.Lock()
	if bail {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// DeferredUnlockLiteral releases inside a deferred closure; every path
// out of the function runs it.
func DeferredUnlockLiteral(c *counter) int {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	return c.n
}

// FallbackError reads the first error before deciding to retry: both
// assignments are consumed on every path.
func FallbackError(path string) error {
	err := os.Remove(path)
	if err != nil {
		err = os.Remove(path + ".bak")
	}
	return err
}

// RetryLoop keeps only the last attempt's error on purpose — each
// iteration's error is read by the loop condition before the next
// assignment lands.
func RetryLoop(path string, attempts int) error {
	var err error
	for i := 0; i < attempts; i++ {
		err = os.Remove(path)
		if err == nil {
			return nil
		}
	}
	return err
}

// SortedChainAccum launders the collected keys with a sort before the
// second loop, so the accumulation order is deterministic.
func SortedChainAccum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total = total + m[k]
	}
	return total
}
