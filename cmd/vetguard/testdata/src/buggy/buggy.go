// Package buggy is a vetguard test fixture: each bug class the linter must
// catch appears here, plus one annotated instance that must be suppressed.
package buggy

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"

	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// MapRangeAppend leaks map iteration order into the returned slice.
func MapRangeAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// MapRangePrint writes rows in map iteration order.
func MapRangePrint(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// MapRangeFieldAppend leaks map order into a struct field.
type collector struct{ rows []string }

func (c *collector) MapRangeFieldAppend(m map[string]bool) {
	for k := range m {
		c.rows = append(c.rows, k)
	}
}

// MapRangeFloatAccum sums floats in map iteration order: float addition
// is not associative, so the rounding — and any comparison against a
// nearby threshold — differs run to run (the G² strata bug).
func MapRangeFloatAccum(m map[string]float64) float64 {
	var g float64
	for _, v := range m {
		g += 2 * v
	}
	return g
}

// GlobalRand draws from the shared process-wide source.
func GlobalRand() int {
	return rand.Intn(10)
}

// GlobalShuffle also goes through the global source.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// IgnoredError discards os.Remove's error result.
func IgnoredError(path string) {
	os.Remove(path)
}

// SuppressedError is exempted by annotation.
func SuppressedError(path string) {
	os.Remove(path) //vetguard:ignore best-effort cleanup
}

// NakedGoroutine launches work outside the internal/par worker pool.
func NakedGoroutine(done chan struct{}) {
	go func() {
		close(done)
	}()
}

// NakedGoCall is the call-expression form of the same bug.
func NakedGoCall(done chan struct{}) {
	go closeLater(done)
}

func closeLater(done chan struct{}) { close(done) }

// SuppressedGoroutine is exempted by annotation.
func SuppressedGoroutine(done chan struct{}) {
	go closeLater(done) //vetguard:ignore test harness plumbing
}

// guarded holds a mutex: every by-value move of it forks the lock word.
type guarded struct {
	mu   sync.Mutex
	hits int
}

// RegCopyParam receives the lock-holding struct by value.
func RegCopyParam(g guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits
}

// RegCopyResult returns the lock-holding struct by value.
func RegCopyResult() (g guarded) {
	return g
}

// RegCopyReceiver is a value-receiver method on the lock-holding struct.
func (g guarded) RegCopyReceiver() int {
	return g.hits
}

// RegCopyRange copies each element's mutex on every iteration.
func RegCopyRange(gs []guarded) int {
	n := 0
	for _, g := range gs {
		n += g.hits
	}
	return n
}

// RegCopyAtomic moves an atomic counter by value, forking its register.
func RegCopyAtomic(c atomic.Int32) int32 {
	return c.Load()
}

// SuppressedRegCopy is exempted by annotation.
func SuppressedRegCopy(g guarded) int { //vetguard:ignore snapshot of an idle struct
	return g.hits
}

// SpanLeakNeverClosed starts a trace span and never ends it: the record
// exports as unfinished with no duration.
func SpanLeakNeverClosed(sc trace.Scope) {
	sp := sc.Start("work")
	sp.Event("tick")
}

// SpanLeakOnReturnPath closes the stage timer only on the happy path;
// the error return abandons it and the stage never records.
func SpanLeakOnReturnPath(h *obs.Histogram, fail bool) error {
	sp := h.Start()
	if fail {
		return fmt.Errorf("boom")
	}
	sp.Stop()
	return nil
}

// SpanLeakSecondReturn ends the span via a chained attribute call on one
// branch but leaks it on the other.
func SpanLeakSecondReturn(sc trace.Scope, n int) int {
	sp := sc.Start("count").Int("n", int64(n))
	if n > 0 {
		sp.Int("pos", 1).End()
		return n
	}
	return -n
}

// SuppressedSpanLeak is exempted by annotation.
func SuppressedSpanLeak(sc trace.Scope) {
	sp := sc.Start("fire-and-forget") //vetguard:ignore exporter flags it as unfinished on purpose
	sp.Event("armed")
}

// DeferredIgnoredError defers a Close whose error nobody will ever see —
// precisely the write-side flush failure that matters.
func DeferredIgnoredError(f *os.File) {
	defer f.Close()
	fmt.Fprintln(f, "row")
}

// GoroutineIgnoredError launches a call whose error vanishes on a
// goroutine no one joins (also a nakedgo finding).
func GoroutineIgnoredError(path string) {
	go os.Remove(path)
}

// LockLeakEarlyReturn returns with the mutex still held on the error
// path: the next Lock deadlocks.
func LockLeakEarlyReturn(g *guarded, bail bool) int {
	g.mu.Lock()
	if bail {
		return -1
	}
	n := g.hits
	g.mu.Unlock()
	return n
}

// RLockLeakFallthrough releases the read lock only inside the loop that
// found a hit; falling through leaks it.
type rwGuarded struct {
	mu   sync.RWMutex
	keys []string
}

func (g *rwGuarded) RLockLeakFallthrough(want string) bool {
	g.mu.RLock()
	for _, k := range g.keys {
		if k == want {
			g.mu.RUnlock()
			return true
		}
	}
	return false
}

// DeadErrOverwritten assigns step one's error and overwrites it before
// anything reads it: the first failure is swallowed.
func DeadErrOverwritten(path string) error {
	err := os.Remove(path)
	err = os.Remove(path + ".bak")
	if err != nil {
		return err
	}
	return nil
}

// DeadErrDroppedOnOnePath checks the error on the slow path but the
// fast-path return drops it unread.
func DeadErrDroppedOnOnePath(path string, fast bool) error {
	err := os.Remove(path)
	if fast {
		return nil
	}
	return err
}

// MapOrderPlainFloatAccum is the plain-assignment spelling of float
// accumulation over a map — invisible to the compound-only syntactic
// check, caught by taint flow.
func MapOrderPlainFloatAccum(m map[string]float64) float64 {
	var g float64
	for _, v := range m {
		g = g + v
	}
	return g
}

// MapOrderEscapedPrint lets a map-ordered value escape the loop and
// reach output afterwards: no sink is inside the range body, so only
// the flow-sensitive layer sees it.
func MapOrderEscapedPrint(m map[string]int) {
	var last string
	for k := range m {
		last = k
	}
	fmt.Println(last)
}

// MapOrderChainedAccum ranges over the unsorted key slice in a second
// loop and accumulates floats in that (map-derived) order. The append
// is the syntactic finding; the accumulation two statements later is
// flow-only.
func MapOrderChainedAccum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}
