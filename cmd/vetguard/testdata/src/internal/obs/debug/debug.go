// Package debug is a vetguard test fixture standing in for the real debug
// HTTP server: its import path ends in internal/obs/debug, the second
// package on the nakedgo allowlist — the server goroutine it launches
// lives for the whole process, so the worker pool's ordered-collection
// guarantees would add nothing.
package debug

// Serve launches the server loop; exempt from the nakedgo check by
// package path.
func Serve(loop func(), done chan struct{}) {
	go func() {
		loop()
		close(done)
	}()
}
