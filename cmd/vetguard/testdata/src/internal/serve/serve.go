// Package serve is a vetguard test fixture standing in for the real
// validation daemon: its import path ends in internal/serve, the third
// package on the nakedgo allowlist — the http.Server goroutine it
// launches spans the daemon's lifetime, and drain synchronization goes
// through the server's own Shutdown, not the worker pool.
package serve

// Run launches the accept loop; exempt from the nakedgo check by package
// path.
func Run(accept func(), done chan error) {
	go func() {
		accept()
		done <- nil
	}()
}
