// Package par is a vetguard test fixture standing in for the real worker
// pool: its import path ends in internal/par, the one place `go`
// statements are allowed — the pool is where raw goroutines are wrapped
// in ordering, cancellation, and panic-propagation guarantees.
package par

// Spawn launches a worker goroutine; exempt from the nakedgo check by
// package path.
func Spawn(work func(), done chan struct{}) {
	go func() {
		work()
		close(done)
	}()
}
