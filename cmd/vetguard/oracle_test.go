package main

// The migration oracle for spanleak. The original implementation
// approximated "the close covers the return" with enclosure-chain
// prefixes: a close counts for a return only when every conditional
// construct the close sits in also encloses the return, and the close
// precedes the return textually. internal/vet reimplements the check as
// real dominance on a CFG. This file keeps the original implementation
// verbatim as a test oracle; TestSpanLeakMatchesLegacyOracle runs both
// over the fixture packages and requires byte-identical findings, which
// is the proof the migration preserved behavior where behavior was
// specified.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/guardrail-db/guardrail/internal/vet"
)

// legacyChecker is the pre-CFG checker shell, reduced to spanleak.
type legacyChecker struct {
	fset     *token.FileSet
	info     *types.Info
	findings []vet.Finding
}

func (c *legacyChecker) report(pos token.Pos, check, format string, args ...any) {
	c.findings = append(c.findings, vet.Finding{
		Pos:     c.fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *legacyChecker) run(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c.checkSpanLeak(fn)
	}
}

// legacyIsSpanType reports whether t is one of the observability span
// value types — obs.Span (stage timer) or trace.Span (trace-tree node).
func legacyIsSpanType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Span" {
		return false
	}
	path := obj.Pkg().Path()
	for _, p := range []string{"internal/obs", "internal/obs/trace"} {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// legacySpanVar tracks one span-typed local between its first
// call-assignment and the analysis at the end of the function.
type legacySpanVar struct {
	obj       types.Object
	name      string
	assignPos token.Pos
	deferred  bool        // defer sp.Stop() / defer sp.End() anywhere
	returned  bool        // sp appears in a return value: ownership moves out
	endPos    []token.Pos // non-deferred sp.Stop()/sp.End() call positions
}

// checkSpanLeak is the original enclosure-chain implementation,
// unchanged except for renamed receiver types.
func (c *legacyChecker) checkSpanLeak(fn *ast.FuncDecl) {
	vars := map[types.Object]*legacySpanVar{}

	// Pass 1: collect span-typed call-assignments and every Stop/End.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if _, isCall := rhs.(*ast.CallExpr); !isCall {
					continue
				}
				obj := c.info.ObjectOf(id)
				if obj == nil || !legacyIsSpanType(obj.Type()) {
					continue
				}
				if _, seen := vars[obj]; !seen {
					vars[obj] = &legacySpanVar{obj: obj, name: id.Name, assignPos: n.Pos()}
				}
			}
		case *ast.DeferStmt:
			if sv := c.spanEndCallee(n.Call, vars); sv != nil {
				sv.deferred = true
			}
		case *ast.CallExpr:
			if sv := c.spanEndCallee(n, vars); sv != nil {
				sv.endPos = append(sv.endPos, n.Pos())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if sv, tracked := vars[c.info.ObjectOf(id)]; tracked {
							sv.returned = true
						}
					}
					return true
				})
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: every return statement in the span's scope needs a covering
	// Stop/End (unless the span is deferred or returned), and the
	// fall-through path needs at least one close overall.
	for _, sv := range vars {
		if sv.deferred || sv.returned {
			continue
		}
		if len(sv.endPos) == 0 {
			c.report(sv.assignPos, "spanleak",
				"span %s is started but never closed; call %s.Stop()/%s.End() or defer it",
				sv.name, sv.name, sv.name)
			continue
		}
		endChains := make([][]ast.Node, len(sv.endPos))
		for i, p := range sv.endPos {
			endChains[i] = stripEnclosing(enclosureChain(fn.Body, p), sv.assignPos)
		}
		scope := sv.obj.Parent()
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			// A return inside a nested function literal exits that literal,
			// not the function the span lives in — unless the span itself was
			// started inside it.
			if lit, ok := n.(*ast.FuncLit); ok {
				if !(lit.Pos() <= sv.assignPos && sv.assignPos < lit.End()) {
					return false
				}
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() < sv.assignPos {
				return true
			}
			if scope != nil && !scope.Contains(ret.Pos()) {
				return true // span's variable is out of scope here
			}
			retChain := stripEnclosing(enclosureChain(fn.Body, ret.Pos()), sv.assignPos)
			closed := false
			for i, p := range sv.endPos {
				if p > sv.assignPos && p < ret.Pos() && chainPrefix(endChains[i], retChain) {
					closed = true
					break
				}
			}
			if !closed {
				c.report(ret.Pos(), "spanleak",
					"return path abandons span %s without Stop/End (started at line %d)",
					sv.name, c.fset.Position(sv.assignPos).Line)
			}
			return true
		})
	}
}

// enclosureChain returns the stack of control-flow constructs (branches,
// loops, switch clauses, function literals, and their blocks) enclosing
// pos within root, outermost first.
func enclosureChain(root ast.Node, pos token.Pos) []ast.Node {
	var stack, chain []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if chain == nil && n.Pos() == pos {
			for _, s := range stack[:len(stack)-1] {
				switch s.(type) {
				case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
					*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
					*ast.CaseClause, *ast.CommClause, *ast.FuncLit, *ast.BlockStmt:
					chain = append(chain, s)
				}
			}
		}
		return true
	})
	return chain
}

// stripEnclosing drops the leading chain nodes that also enclose pos:
// what remains is the chain relative to the span's assignment, so
// constructs shared with the assignment (e.g. the loop both live in)
// don't count as extra conditionality.
func stripEnclosing(chain []ast.Node, pos token.Pos) []ast.Node {
	i := 0
	for i < len(chain) && chain[i].Pos() <= pos && pos < chain[i].End() {
		i++
	}
	return chain[i:]
}

// chainPrefix reports whether close-site chain a is a prefix of
// return-site chain b: the close dominates the return only when every
// conditional construct the close sits in also encloses the return.
func chainPrefix(a, b []ast.Node) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spanEndCallee returns the tracked span a Stop/End call closes, if any:
// the call's receiver chain (sp.Int(...).End()) is unwound to its root
// identifier and matched against the tracked locals.
func (c *legacyChecker) spanEndCallee(call *ast.CallExpr, vars map[types.Object]*legacySpanVar) *legacySpanVar {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stop" && sel.Sel.Name != "End") {
		return nil
	}
	id := legacyRootIdent(sel.X)
	if id == nil {
		return nil
	}
	return vars[c.info.ObjectOf(id)]
}

// legacyRootIdent unwinds a receiver chain (a.B().C.D(...)) to its
// leftmost identifier.
func legacyRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
