// Command experiments regenerates the paper's evaluation tables and
// figures (see DESIGN.md §4 for the experiment index):
//
//	experiments -scale 0.1 table3
//	experiments -datasets 1,2,6 fig6
//	experiments all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/experiments"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/debug"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

type renderer interface{ Render() string }

func main() {
	scale := flag.Float64("scale", 0.1, "row-count scale in (0,1]; 1.0 reproduces Table 2 sizes")
	seed := flag.Int64("seed", 1, "experiment seed")
	eps := flag.Float64("eps", 0, "Guardrail epsilon (0 = default)")
	datasets := flag.String("datasets", "", "comma-separated Table 2 ids (default: all 12)")
	fig7Dataset := flag.Int("fig7-dataset", 6, "dataset id for the fig7 epsilon sweep")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker-pool size; 1 forces the serial pipeline")
	engine := flag.String("engine", "ast", "guard execution backend for every experiment: ast|compiled")
	report := flag.String("report", "", "write a JSON run-report (counters + stage timings) to this path")
	debugAddr := flag.String("debug-addr", "", "serve live expvar metrics, Prometheus /metrics and pprof on this address (e.g. localhost:6060)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto-loadable) to this path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table1|table3|table4|table5|table6|table7|table8|fig6|fig7|smt|gnt|all>")
		os.Exit(2)
	}

	reg := obs.New()
	if *debugAddr != "" {
		srv, err := debug.Serve(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() { _ = srv.Close() }() // best-effort teardown at process exit
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s/debug/vars\n", srv.Addr)
	}

	var tr *trace.Tracer
	if *tracePath != "" {
		w := *workers
		if w < 1 {
			w = 1
		}
		tr = trace.New(w)
	}

	eng, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Epsilon: *eps, Workers: *workers, Obs: reg, Trace: tr.Root(), Engine: eng}
	if *datasets != "" {
		for _, part := range strings.Split(*datasets, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad dataset id %q\n", part)
				os.Exit(2)
			}
			cfg.Datasets = append(cfg.Datasets, id)
		}
	}

	runners := map[string]func() (renderer, error){
		"table1": func() (renderer, error) { return experiments.Table1(cfg) },
		"table3": func() (renderer, error) { return experiments.Table3(cfg) },
		"table4": func() (renderer, error) { return experiments.Table4(cfg) },
		"table5": func() (renderer, error) { return experiments.Table5(cfg) },
		"table6": func() (renderer, error) { return experiments.Table6(cfg) },
		"table7": func() (renderer, error) { return experiments.Table7(cfg) },
		"table8": func() (renderer, error) { return experiments.Table8(cfg) },
		"fig6":   func() (renderer, error) { return experiments.Fig6(cfg) },
		"fig7":   func() (renderer, error) { return experiments.Fig7(cfg, *fig7Dataset) },
		"smt":    func() (renderer, error) { return experiments.SMTBaseline(cfg) },
		"gnt":    func() (renderer, error) { return experiments.AblationGNT(cfg) },
	}
	order := []string{"table1", "table3", "table4", "table5", "table6", "table7", "table8", "fig6", "fig7", "smt", "gnt"}

	which := flag.Arg(0)
	var toRun []string
	if which == "all" {
		toRun = order
	} else if _, ok := runners[which]; ok {
		toRun = []string{which}
	} else {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", which)
		os.Exit(2)
	}
	for _, name := range toRun {
		fmt.Printf("=== %s (scale %g, seed %d) ===\n", name, *scale, *seed)
		res, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
	if summary := reg.StageSummary(); summary != "" {
		fmt.Fprint(os.Stderr, summary)
	}
	if tr != nil {
		if err := writeTrace(tr, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n", *tracePath)
		if path := tr.CriticalPath(); len(path) > 0 {
			fmt.Fprint(os.Stderr, trace.FormatCriticalPath(path))
		}
	}
	if *report != "" {
		if err := obs.WriteReportWithTrace(*report, "experiments "+which, reg, tr); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// writeTrace exports the tracer as a Chrome trace-event file.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteChrome(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
