// Command benchjson converts `go test -bench` text output into a stable
// JSON record — the BENCH_<date>.json files the CI bench lane archives to
// track the repo's performance trajectory — and can print a
// serial-vs-parallel speedup table for the worker-sweep benches.
//
//	go test -bench=. -benchmem -count=3 -run='^$' . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_2026-08-05.json -summary
//
// With -summary, benchmarks named <Base>/workers=<N> are grouped and the
// median ns/op of each worker count is compared against workers=1, emitted
// as a GitHub-flavored markdown table for the job summary. Only the
// standard library is used.
//
// With -serve-report, the exact request-latency histograms from a
// `guardrail serve ... -report report.json` run are folded into the same
// record as a `serve` section (p50/p99/p999/max per metric and label
// set), and -in-json extends an already-written BENCH_*.json in place:
//
//	benchjson -in "" -in-json BENCH_2026-08-05.json \
//	  -serve-report serve-report.json -out BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sample is one benchmark line's measurements.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// Benchmark aggregates the samples of one benchmark name across -count
// repetitions, in input order.
type Benchmark struct {
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
	// MedianNs is the median ns/op across samples, the number the
	// speedup summary and trend tracking key on.
	MedianNs float64 `json:"median_ns_per_op"`
}

// ServeLatency is one exact serving histogram lifted out of a
// `guardrail serve -report` run report: the daemon's request-latency
// distribution keyed by metric name and label set, reduced to the
// trend-tracked tail quantiles. Quantiles are nearest-rank upper bounds
// from the exact log-linear buckets (≤1/32 relative error), so they are
// comparable run-to-run without sampling noise.
type ServeLatency struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  int64             `json:"count"`
	MeanNs float64           `json:"mean_ns"`
	P50Ns  int64             `json:"p50_ns"`
	P99Ns  int64             `json:"p99_ns"`
	P999Ns int64             `json:"p999_ns"`
	MaxNs  int64             `json:"max_ns"`
}

// Report is the archived JSON document.
type Report struct {
	Date       string         `json:"date"`
	Goos       string         `json:"goos,omitempty"`
	Goarch     string         `json:"goarch,omitempty"`
	Pkg        string         `json:"pkg,omitempty"`
	CPU        string         `json:"cpu,omitempty"`
	Benchmarks []Benchmark    `json:"benchmarks"`
	Serve      []ServeLatency `json:"serve,omitempty"`
}

func main() {
	in := flag.String("in", "-", "bench output file; - reads stdin, empty skips bench input")
	inJSON := flag.String("in-json", "", "existing BENCH_*.json to extend instead of starting fresh")
	serveReport := flag.String("serve-report", "", "serve run-report JSON (-report output) whose exact histograms become the serve section")
	out := flag.String("out", "", "output JSON path (default BENCH_<utc-date>.json)")
	date := flag.String("date", "", "date stamp for the record (default today, UTC)")
	summary := flag.Bool("summary", false, "print a serial-vs-parallel markdown summary to stdout")
	flag.Parse()

	if err := run(*in, *inJSON, *serveReport, *out, *date, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in, inJSON, serveReport, out, date string, summary bool) error {
	rep := &Report{}
	if inJSON != "" {
		data, err := os.ReadFile(inJSON)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, rep); err != nil {
			return fmt.Errorf("parse %s: %w", inJSON, err)
		}
	}
	if in != "" {
		var r io.Reader = os.Stdin
		if in != "-" {
			f, err := os.Open(in)
			if err != nil {
				return err
			}
			defer func() { _ = f.Close() }() // read side: Close error carries no data
			r = f
		}
		parsed, err := Parse(r)
		if err != nil {
			return err
		}
		if rep.Goos == "" {
			rep.Goos, rep.Goarch, rep.Pkg, rep.CPU = parsed.Goos, parsed.Goarch, parsed.Pkg, parsed.CPU
		}
		rep.Benchmarks = append(rep.Benchmarks, parsed.Benchmarks...)
	}
	if serveReport != "" {
		serve, err := LoadServeReport(serveReport)
		if err != nil {
			return err
		}
		rep.Serve = append(rep.Serve, serve...)
	}
	if len(rep.Benchmarks) == 0 && len(rep.Serve) == 0 {
		return fmt.Errorf("no benchmark lines or serve histograms found")
	}
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	rep.Date = date
	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks, %d serve histograms to %s\n",
		len(rep.Benchmarks), len(rep.Serve), out)
	if summary {
		fmt.Print(Summary(rep))
	}
	return nil
}

// LoadServeReport extracts the exact-histogram section of an obs run
// report (the `hists` array of HistSnapshot objects) into ServeLatency
// records, sorted by name then label set. Empty histograms are skipped.
// Only the fields benchjson needs are decoded; unknown fields — the
// bucket arrays, counters, stages — are ignored.
func LoadServeReport(path string) ([]ServeLatency, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Hists []struct {
			Name   string `json:"name"`
			Labels []struct {
				Key   string `json:"key"`
				Value string `json:"value"`
			} `json:"labels"`
			Count  int64 `json:"count"`
			SumNS  int64 `json:"sum_ns"`
			MaxNS  int64 `json:"max_ns"`
			P50NS  int64 `json:"p50_ns"`
			P99NS  int64 `json:"p99_ns"`
			P999NS int64 `json:"p999_ns"`
		} `json:"hists"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	out := make([]ServeLatency, 0, len(doc.Hists))
	for _, h := range doc.Hists {
		if h.Count == 0 {
			continue
		}
		s := ServeLatency{
			Name:   h.Name,
			Count:  h.Count,
			MeanNs: float64(h.SumNS) / float64(h.Count),
			P50Ns:  h.P50NS,
			P99Ns:  h.P99NS,
			P999Ns: h.P999NS,
			MaxNs:  h.MaxNS,
		}
		if len(h.Labels) > 0 {
			s.Labels = make(map[string]string, len(h.Labels))
			for _, l := range h.Labels {
				s.Labels[l.Key] = l.Value
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out, nil
}

// labelKey renders a label map as a deterministic sort key.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
		sb.WriteByte(',')
	}
	return sb.String()
}

// Parse reads `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName/sub-8   	     100	  11309297 ns/op	 5716236 B/op	   50010 allocs/op
//
// Header lines (goos:, goarch:, pkg:, cpu:) annotate the report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	index := map[string]int{} // name -> position in rep.Benchmarks
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := trimProcSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := Sample{Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		if s.NsPerOp == 0 {
			continue
		}
		pos, ok := index[name]
		if !ok {
			pos = len(rep.Benchmarks)
			index[name] = pos
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name})
		}
		rep.Benchmarks[pos].Samples = append(rep.Benchmarks[pos].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range rep.Benchmarks {
		rep.Benchmarks[i].MedianNs = medianNs(rep.Benchmarks[i].Samples)
	}
	return rep, nil
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> the bench runner
// appends: BenchmarkFoo/workers=4-8 -> BenchmarkFoo/workers=4.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func medianNs(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.NsPerOp
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// Summary renders the serial-vs-parallel comparison: every benchmark
// family with /workers=N variants becomes a markdown table row per worker
// count, with speedup relative to that family's workers=1 baseline.
func Summary(rep *Report) string {
	type variant struct {
		workers int
		ns      float64
	}
	families := map[string][]variant{}
	var order []string
	for _, b := range rep.Benchmarks {
		base, w, ok := splitWorkers(b.Name)
		if !ok {
			continue
		}
		if _, seen := families[base]; !seen {
			order = append(order, base)
		}
		families[base] = append(families[base], variant{workers: w, ns: b.MedianNs})
	}
	var sb strings.Builder
	sb.WriteString("## Serial vs parallel (median ns/op)\n\n")
	if len(order) == 0 {
		sb.WriteString("No /workers= benchmark variants found.\n")
		sb.WriteString(serveSummary(rep))
		return sb.String()
	}
	sb.WriteString("| Benchmark | Workers | ns/op | Speedup vs serial |\n")
	sb.WriteString("|---|---:|---:|---:|\n")
	for _, base := range order {
		vs := families[base]
		sort.Slice(vs, func(i, j int) bool { return vs[i].workers < vs[j].workers })
		var serial float64
		for _, v := range vs {
			if v.workers == 1 {
				serial = v.ns
			}
		}
		for _, v := range vs {
			speedup := "—"
			if serial > 0 && v.ns > 0 {
				speedup = fmt.Sprintf("%.2fx", serial/v.ns)
			}
			fmt.Fprintf(&sb, "| %s | %d | %.0f | %s |\n", base, v.workers, v.ns, speedup)
		}
	}
	sb.WriteString(serveSummary(rep))
	return sb.String()
}

// serveSummary renders the serve section, when present, as a latency
// table for the job summary. Empty string otherwise.
func serveSummary(rep *Report) string {
	if len(rep.Serve) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("\n## Serve latency (exact histograms)\n\n")
	sb.WriteString("| Metric | Labels | Count | p50 | p99 | p99.9 | max |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|---:|\n")
	for _, s := range rep.Serve {
		labels := strings.TrimSuffix(labelKey(s.Labels), ",")
		if labels == "" {
			labels = "—"
		}
		fmt.Fprintf(&sb, "| %s | %s | %d | %s | %s | %s | %s |\n",
			s.Name, labels, s.Count,
			time.Duration(s.P50Ns), time.Duration(s.P99Ns),
			time.Duration(s.P999Ns), time.Duration(s.MaxNs))
	}
	return sb.String()
}

// splitWorkers recognizes names of the form <Base>/workers=<N>.
func splitWorkers(name string) (base string, workers int, ok bool) {
	i := strings.LastIndex(name, "/workers=")
	if i < 0 {
		return "", 0, false
	}
	w, err := strconv.Atoi(name[i+len("/workers="):])
	if err != nil {
		return "", 0, false
	}
	return name[:i], w, true
}
