// Command benchjson converts `go test -bench` text output into a stable
// JSON record — the BENCH_<date>.json files the CI bench lane archives to
// track the repo's performance trajectory — and can print a
// serial-vs-parallel speedup table for the worker-sweep benches.
//
//	go test -bench=. -benchmem -count=3 -run='^$' . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_2026-08-05.json -summary
//
// With -summary, benchmarks named <Base>/workers=<N> are grouped and the
// median ns/op of each worker count is compared against workers=1, emitted
// as a GitHub-flavored markdown table for the job summary. Only the
// standard library is used.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sample is one benchmark line's measurements.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// Benchmark aggregates the samples of one benchmark name across -count
// repetitions, in input order.
type Benchmark struct {
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
	// MedianNs is the median ns/op across samples, the number the
	// speedup summary and trend tracking key on.
	MedianNs float64 `json:"median_ns_per_op"`
}

// Report is the archived JSON document.
type Report struct {
	Date       string      `json:"date"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "bench output file; - reads stdin")
	out := flag.String("out", "", "output JSON path (default BENCH_<utc-date>.json)")
	date := flag.String("date", "", "date stamp for the record (default today, UTC)")
	summary := flag.Bool("summary", false, "print a serial-vs-parallel markdown summary to stdout")
	flag.Parse()

	if err := run(*in, *out, *date, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in, out, date string, summary bool) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // read side: Close error carries no data
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	rep.Date = date
	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), out)
	if summary {
		fmt.Print(Summary(rep))
	}
	return nil
}

// Parse reads `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName/sub-8   	     100	  11309297 ns/op	 5716236 B/op	   50010 allocs/op
//
// Header lines (goos:, goarch:, pkg:, cpu:) annotate the report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	index := map[string]int{} // name -> position in rep.Benchmarks
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := trimProcSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := Sample{Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		if s.NsPerOp == 0 {
			continue
		}
		pos, ok := index[name]
		if !ok {
			pos = len(rep.Benchmarks)
			index[name] = pos
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name})
		}
		rep.Benchmarks[pos].Samples = append(rep.Benchmarks[pos].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range rep.Benchmarks {
		rep.Benchmarks[i].MedianNs = medianNs(rep.Benchmarks[i].Samples)
	}
	return rep, nil
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> the bench runner
// appends: BenchmarkFoo/workers=4-8 -> BenchmarkFoo/workers=4.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func medianNs(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.NsPerOp
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// Summary renders the serial-vs-parallel comparison: every benchmark
// family with /workers=N variants becomes a markdown table row per worker
// count, with speedup relative to that family's workers=1 baseline.
func Summary(rep *Report) string {
	type variant struct {
		workers int
		ns      float64
	}
	families := map[string][]variant{}
	var order []string
	for _, b := range rep.Benchmarks {
		base, w, ok := splitWorkers(b.Name)
		if !ok {
			continue
		}
		if _, seen := families[base]; !seen {
			order = append(order, base)
		}
		families[base] = append(families[base], variant{workers: w, ns: b.MedianNs})
	}
	var sb strings.Builder
	sb.WriteString("## Serial vs parallel (median ns/op)\n\n")
	if len(order) == 0 {
		sb.WriteString("No /workers= benchmark variants found.\n")
		return sb.String()
	}
	sb.WriteString("| Benchmark | Workers | ns/op | Speedup vs serial |\n")
	sb.WriteString("|---|---:|---:|---:|\n")
	for _, base := range order {
		vs := families[base]
		sort.Slice(vs, func(i, j int) bool { return vs[i].workers < vs[j].workers })
		var serial float64
		for _, v := range vs {
			if v.workers == 1 {
				serial = v.ns
			}
		}
		for _, v := range vs {
			speedup := "—"
			if serial > 0 && v.ns > 0 {
				speedup = fmt.Sprintf("%.2fx", serial/v.ns)
			}
			fmt.Fprintf(&sb, "| %s | %d | %.0f | %s |\n", base, v.workers, v.ns, speedup)
		}
	}
	return sb.String()
}

// splitWorkers recognizes names of the form <Base>/workers=<N>.
func splitWorkers(name string) (base string, workers int, ok bool) {
	i := strings.LastIndex(name, "/workers=")
	if i < 0 {
		return "", 0, false
	}
	w, err := strconv.Atoi(name[i+len("/workers="):])
	if err != nil {
		return "", 0, false
	}
	return name[:i], w, true
}
