package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// canned is a trimmed transcript of `go test -bench=. -benchmem -count=2`
// including headers, noise lines, and worker-sweep sub-benchmarks.
const canned = `goos: linux
goarch: amd64
pkg: github.com/guardrail-db/guardrail
cpu: AMD EPYC 7713 64-Core Processor
BenchmarkSynthesizeWorkers/workers=1-8         	      64	  18000000 ns/op	 5716236 B/op	   50010 allocs/op
BenchmarkSynthesizeWorkers/workers=1-8         	      64	  18200000 ns/op	 5716300 B/op	   50012 allocs/op
BenchmarkSynthesizeWorkers/workers=4-8         	     256	   6000000 ns/op	 5800000 B/op	   50500 allocs/op
BenchmarkSynthesizeWorkers/workers=4-8         	     250	   6400000 ns/op	 5800100 B/op	   50501 allocs/op
BenchmarkG2Test-8                              	  100000	     11234 ns/op
PASS
ok  	github.com/guardrail-db/guardrail	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.Goos, rep.Goarch)
	}
	if rep.CPU != "AMD EPYC 7713 64-Core Processor" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if rep.Pkg != "github.com/guardrail-db/guardrail" {
		t.Errorf("pkg = %q", rep.Pkg)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	w1 := rep.Benchmarks[0]
	if w1.Name != "BenchmarkSynthesizeWorkers/workers=1" {
		t.Errorf("first benchmark name = %q (GOMAXPROCS suffix not trimmed?)", w1.Name)
	}
	if len(w1.Samples) != 2 {
		t.Fatalf("workers=1 has %d samples, want 2", len(w1.Samples))
	}
	if w1.Samples[0].NsPerOp != 18000000 || w1.Samples[0].Iterations != 64 {
		t.Errorf("sample 0 = %+v", w1.Samples[0])
	}
	if w1.Samples[0].BytesPerOp != 5716236 || w1.Samples[0].AllocsPerOp != 50010 {
		t.Errorf("memory stats = %+v", w1.Samples[0])
	}
	if w1.MedianNs != 18100000 {
		t.Errorf("workers=1 median = %v, want 18100000", w1.MedianNs)
	}

	g2 := rep.Benchmarks[2]
	if g2.Name != "BenchmarkG2Test" {
		t.Errorf("third benchmark name = %q", g2.Name)
	}
	if g2.MedianNs != 11234 || g2.Samples[0].BytesPerOp != 0 {
		t.Errorf("no-benchmem line parsed as %+v", g2)
	}
}

func TestSummary(t *testing.T) {
	rep, err := Parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	got := Summary(rep)
	// workers=1 median 18.1ms, workers=4 median 6.2ms -> 2.92x.
	for _, want := range []string{
		"| BenchmarkSynthesizeWorkers | 1 | 18100000 | 1.00x |",
		"| BenchmarkSynthesizeWorkers | 4 | 6200000 | 2.92x |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "BenchmarkG2Test") {
		t.Errorf("summary should only include /workers= families:\n%s", got)
	}
}

func TestSummaryNoWorkerVariants(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkFoo", MedianNs: 1}}}
	if got := Summary(rep); !strings.Contains(got, "No /workers= benchmark variants") {
		t.Errorf("got %q", got)
	}
}

// cannedReport is a trimmed `guardrail serve -report` document: the
// exact-histogram section plus the counters/stages noise benchjson must
// ignore. Label order inside one histogram is intentionally unsorted to
// exercise map construction, and the empty histogram must be dropped.
const cannedReport = `{
  "command": "serve",
  "counters": {"serve.requests": 12},
  "stages": [],
  "hists": [
    {"name": "serve.request.check", "count": 10, "sum_ns": 1000,
     "min_ns": 50, "max_ns": 300, "p50_ns": 95, "p90_ns": 200,
     "p99_ns": 280, "p999_ns": 300,
     "buckets": [{"le_ns": 95, "count": 10}]},
    {"name": "serve.request.latency",
     "labels": [{"key": "endpoint", "value": "check"}, {"key": "dataset", "value": "postal"}],
     "count": 4, "sum_ns": 400, "min_ns": 80, "max_ns": 130,
     "p50_ns": 99, "p90_ns": 120, "p99_ns": 130, "p999_ns": 130},
    {"name": "serve.request.rectify", "count": 0, "sum_ns": 0,
     "min_ns": 0, "max_ns": 0, "p50_ns": 0, "p90_ns": 0, "p99_ns": 0, "p999_ns": 0}
  ]
}`

func TestLoadServeReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, []byte(cannedReport), 0o644); err != nil {
		t.Fatal(err)
	}
	serve, err := LoadServeReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(serve) != 2 {
		t.Fatalf("got %d serve entries, want 2 (empty histogram not dropped?): %+v", len(serve), serve)
	}
	check := serve[0]
	if check.Name != "serve.request.check" || check.Count != 10 {
		t.Errorf("first entry = %+v", check)
	}
	if check.MeanNs != 100 || check.P50Ns != 95 || check.P99Ns != 280 || check.P999Ns != 300 || check.MaxNs != 300 {
		t.Errorf("quantiles = %+v", check)
	}
	if check.Labels != nil {
		t.Errorf("unlabeled histogram got labels %v", check.Labels)
	}
	lat := serve[1]
	if lat.Name != "serve.request.latency" {
		t.Errorf("second entry = %+v (sorted by name?)", lat)
	}
	if lat.Labels["endpoint"] != "check" || lat.Labels["dataset"] != "postal" {
		t.Errorf("labels = %v", lat.Labels)
	}
}

func TestRunExtendsExistingJSON(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	if err := os.WriteFile(report, []byte(cannedReport), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_2026-08-07.json")

	// First pass: bench text only, as the CI bench step does.
	bench := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(bench, []byte(canned), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bench, "", "", out, "2026-08-07", false); err != nil {
		t.Fatal(err)
	}

	// Second pass: extend the same file in place with the serve section.
	if err := run("", out, report, out, "2026-08-07", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Errorf("benchmarks lost on extend: got %d, want 3", len(rep.Benchmarks))
	}
	if rep.Goos != "linux" {
		t.Errorf("headers lost on extend: goos = %q", rep.Goos)
	}
	if len(rep.Serve) != 2 {
		t.Errorf("serve section: got %d entries, want 2", len(rep.Serve))
	}
	if rep.Date != "2026-08-07" {
		t.Errorf("date = %q", rep.Date)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run("", "", "", out, "2026-08-07", false); err == nil {
		t.Fatal("want error for no bench lines and no serve histograms")
	}
}

func TestServeSummary(t *testing.T) {
	rep := &Report{Serve: []ServeLatency{{
		Name:   "serve.request.check",
		Labels: map[string]string{"endpoint": "check"},
		Count:  10, P50Ns: 95000, P99Ns: 280000, P999Ns: 300000, MaxNs: 300000,
	}}}
	got := Summary(rep)
	if !strings.Contains(got, "## Serve latency") {
		t.Errorf("summary missing serve table:\n%s", got)
	}
	if !strings.Contains(got, "| serve.request.check | endpoint=check | 10 | 95µs | 280µs | 300µs | 300µs |") {
		t.Errorf("serve row malformed:\n%s", got)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo/workers=4-8": "BenchmarkFoo/workers=4",
		"BenchmarkFoo":             "BenchmarkFoo",
		"BenchmarkFoo/sub-case":    "BenchmarkFoo/sub-case",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
