package main

import (
	"strings"
	"testing"
)

// canned is a trimmed transcript of `go test -bench=. -benchmem -count=2`
// including headers, noise lines, and worker-sweep sub-benchmarks.
const canned = `goos: linux
goarch: amd64
pkg: github.com/guardrail-db/guardrail
cpu: AMD EPYC 7713 64-Core Processor
BenchmarkSynthesizeWorkers/workers=1-8         	      64	  18000000 ns/op	 5716236 B/op	   50010 allocs/op
BenchmarkSynthesizeWorkers/workers=1-8         	      64	  18200000 ns/op	 5716300 B/op	   50012 allocs/op
BenchmarkSynthesizeWorkers/workers=4-8         	     256	   6000000 ns/op	 5800000 B/op	   50500 allocs/op
BenchmarkSynthesizeWorkers/workers=4-8         	     250	   6400000 ns/op	 5800100 B/op	   50501 allocs/op
BenchmarkG2Test-8                              	  100000	     11234 ns/op
PASS
ok  	github.com/guardrail-db/guardrail	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.Goos, rep.Goarch)
	}
	if rep.CPU != "AMD EPYC 7713 64-Core Processor" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if rep.Pkg != "github.com/guardrail-db/guardrail" {
		t.Errorf("pkg = %q", rep.Pkg)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	w1 := rep.Benchmarks[0]
	if w1.Name != "BenchmarkSynthesizeWorkers/workers=1" {
		t.Errorf("first benchmark name = %q (GOMAXPROCS suffix not trimmed?)", w1.Name)
	}
	if len(w1.Samples) != 2 {
		t.Fatalf("workers=1 has %d samples, want 2", len(w1.Samples))
	}
	if w1.Samples[0].NsPerOp != 18000000 || w1.Samples[0].Iterations != 64 {
		t.Errorf("sample 0 = %+v", w1.Samples[0])
	}
	if w1.Samples[0].BytesPerOp != 5716236 || w1.Samples[0].AllocsPerOp != 50010 {
		t.Errorf("memory stats = %+v", w1.Samples[0])
	}
	if w1.MedianNs != 18100000 {
		t.Errorf("workers=1 median = %v, want 18100000", w1.MedianNs)
	}

	g2 := rep.Benchmarks[2]
	if g2.Name != "BenchmarkG2Test" {
		t.Errorf("third benchmark name = %q", g2.Name)
	}
	if g2.MedianNs != 11234 || g2.Samples[0].BytesPerOp != 0 {
		t.Errorf("no-benchmem line parsed as %+v", g2)
	}
}

func TestSummary(t *testing.T) {
	rep, err := Parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	got := Summary(rep)
	// workers=1 median 18.1ms, workers=4 median 6.2ms -> 2.92x.
	for _, want := range []string{
		"| BenchmarkSynthesizeWorkers | 1 | 18100000 | 1.00x |",
		"| BenchmarkSynthesizeWorkers | 4 | 6200000 | 2.92x |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "BenchmarkG2Test") {
		t.Errorf("summary should only include /workers= families:\n%s", got)
	}
}

func TestSummaryNoWorkerVariants(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkFoo", MedianNs: 1}}}
	if got := Summary(rep); !strings.Contains(got, "No /workers= benchmark variants") {
		t.Errorf("got %q", got)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo/workers=4-8": "BenchmarkFoo/workers=4",
		"BenchmarkFoo":             "BenchmarkFoo",
		"BenchmarkFoo/sub-case":    "BenchmarkFoo/sub-case",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
