module github.com/guardrail-db/guardrail

go 1.22
